//! Many fault-tolerant systems sharing one LAN: the sharded driver.
//!
//! The paper's prototype dedicates a private Ethernet to one
//! primary/backup pair. A machine room does not: many replicated
//! machines contend for the same wire. [`FtCluster`] models exactly
//! that — `N` independent [`FtSystem`] shards, each with its own guest
//! image, replica chain, disk and console, all coordinating over a
//! single shared-medium [`Lan`] so that one system's `[E, Int]` burst
//! delays every other system's epoch boundary.
//!
//! The shards never exchange protocol messages — sharding is by
//! construction total: each guest workload is pinned to one replica
//! chain. What couples them is the *medium*: bandwidth contention
//! (`Lan` serializes all transmissions), plus whatever loss or
//! severing is injected on individual links.
//!
//! # Scheduling
//!
//! Shards register on the shared kernel's
//! [`hvft_sim::sched::Scheduler`] — every step advances the
//! shard whose [`FtSystem::next_action_time`] is smallest (ties break
//! by shard index), so cross-shard contention on the medium is resolved
//! in near-global-time order and a cluster run is exactly reproducible.
//!
//! # Parallel execution
//!
//! [`FtCluster::run_with`] can run the cluster's guest computations on
//! worker threads ([`Parallelism::Threads`]) while producing results
//! **bit-identical** to the sequential schedule. The unit of
//! parallelism is the *replica slice*, not the shard: a shard's plan
//! step yields a **wave** of independent slices — one per replica whose
//! conservative horizon permits progress — so a `t = 4` system keeps
//! all five of its replicas' guests in flight at once, and a cluster
//! exposes up to `shards × (1 + backups)` concurrent slices. The
//! executor is conservative — it never speculates and never rolls
//! back — and rests on two facts:
//!
//! 1. **Replica-slice independence.** A planned slice runs only the
//!    replica's own guest (CPU + memory); replicas couple exclusively
//!    through protocol messages, which the link delivers no sooner
//!    than the sender's clock plus the link's minimum latency — the
//!    lookahead that bounds every budget in the wave. Whatever an
//!    earlier wave member's commit schedules therefore lands at or
//!    beyond every horizon planned from the snapshot, so slices in a
//!    wave cannot influence one another. Likewise shards exchange no
//!    messages, so another shard reaches this one only through the
//!    medium's serialization clock, read at commit points only.
//! 2. **Commit in order.** Wave slices commit in plan order (ascending
//!    snapshot clock, replica index), and all shared-medium effects
//!    commit on the coordinator thread in the same global
//!    `(time, shard)` order the sequential schedule uses.
//!
//! So the coordinator plans each shard's wave as soon as its previous
//! action commits, ships every slice in the wave to the persistent
//! work-stealing pool ([`hvft_sim::pool::WorkPool`]), and commits
//! strictly in order — banking slices that finish early. Sequential
//! mode executes the *identical* plan/commit sequence inline, which is
//! why the two modes cannot diverge.
//!
//! # Examples
//!
//! ```
//! use hvft_core::cluster::{FtCluster, Parallelism};
//! use hvft_core::config::FtConfig;
//! use hvft_core::system::RunEnd;
//! use hvft_guest::{build_image, hello_source, KernelConfig};
//! use hvft_net::link::LinkSpec;
//! use hvft_sim::time::SimDuration;
//!
//! let image = build_image(&KernelConfig::default(), &hello_source("hi\n", 1)).unwrap();
//! let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 7);
//! let cfg = FtConfig {
//!     loss_prob: 0.1,
//!     retransmit: Some(SimDuration::from_millis(5)),
//!     // Detection must dominate worst-case retransmission gaps.
//!     detector_timeout: SimDuration::from_millis(300),
//!     ..FtConfig::default()
//! };
//! for _ in 0..2 {
//!     cluster.add_system(&image, cfg);
//! }
//! let results = cluster.run_with(Parallelism::Threads(2));
//! for r in &results {
//!     assert!(matches!(r.outcome, RunEnd::Exit { code: 42 }));
//! }
//! ```

use crate::config::FtConfig;
use crate::system::{FtRunResult, FtSystem, StepPlan, SystemCheckpoint, WireFrame};
use hvft_hypervisor::hvguest::{HvEvent, HvGuest};
use hvft_isa::program::Program;
use hvft_net::lan::{Lan, LanStats};
use hvft_net::link::LinkSpec;
use hvft_sim::pool::WorkPool;
use hvft_sim::sched::Scheduler;
use hvft_sim::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::mpsc;
use std::thread;

/// How a cluster run distributes its shards' guest computations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// One thread does everything, in exact global-time order.
    #[default]
    Sequential,
    /// Guest slices execute on this many worker threads; all
    /// shared-medium effects still commit in exact global-time order,
    /// so the results are bit-identical to [`Parallelism::Sequential`].
    /// `Threads(0)` degenerates to sequential.
    Threads(usize),
}

impl Parallelism {
    /// How many pool workers a run with this many *slice slots*
    /// (`shards × max replicas per shard`, see
    /// [`FtCluster::slice_slots`]) asks for: the requested thread
    /// count, clamped to the slot count (more workers than
    /// concurrently plannable slices would only ever idle). Sequential
    /// (and `Threads(0)`, its degenerate form) is 1. Unlike
    /// [`Parallelism::effective_workers`], this does **not** clamp to
    /// the machine's cores — it is the pool size, not a speedup bound.
    pub fn requested_workers(&self, slots: usize) -> usize {
        match *self {
            Parallelism::Sequential | Parallelism::Threads(0) => 1,
            Parallelism::Threads(n) => n.min(slots).max(1),
        }
    }

    /// How many guest computations a run with this many slice slots
    /// can actually advance simultaneously in this mode:
    /// [`Parallelism::requested_workers`] further clamped to the
    /// machine's available cores (the OS cannot run more in parallel
    /// than that). Sequential (and `Threads(0)`) is 1.
    ///
    /// Bench labels record this so archived scaling rows are honest: a
    /// `Threads(2)` sweep on a one-core box is effectively sequential,
    /// and its label must say so.
    pub fn effective_workers(&self, slots: usize) -> usize {
        let cores = thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        self.requested_workers(slots).min(cores).max(1)
    }
}

/// `N` independent fault-tolerant systems multiplexed over one shared
/// [`Lan`], co-simulated on one conservative discrete-event schedule.
pub struct FtCluster {
    lan: Rc<RefCell<Lan<WireFrame>>>,
    sched: Scheduler<FtSystem>,
}

impl FtCluster {
    /// An empty cluster over a shared medium modelled by `link`;
    /// `seed` feeds the medium's per-link loss RNGs.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        FtCluster {
            lan: Rc::new(RefCell::new(Lan::new(link, seed))),
            sched: Scheduler::new(),
        }
    }

    /// Adds one fault-tolerant system (a guest image and its
    /// `1 + cfg.backups` replicas) to the cluster; returns its shard
    /// index. The system's replicas get consecutive nodes on the
    /// shared LAN; `cfg.link` is overridden by the cluster's medium.
    pub fn add_system(&mut self, image: &Program, mut cfg: FtConfig) -> usize {
        let base = {
            let mut lan = self.lan.borrow_mut();
            let base = lan.nodes();
            for _ in 0..(1 + cfg.backups) {
                lan.add_node();
            }
            base
        };
        cfg.link = *self.lan.borrow().link();
        let sys = FtSystem::new_on_lan(image, cfg, Rc::clone(&self.lan), base);
        self.sched.add(sys)
    }

    /// Number of shards.
    pub fn systems(&self) -> usize {
        self.sched.len()
    }

    /// Upper bound on the number of guest slices this cluster can have
    /// in flight at once: `shards × max replicas per shard`. Each
    /// shard's plan step yields up to one slice per replica (a wave),
    /// so this — not the shard count — is what
    /// [`Parallelism::Threads`] is clamped against.
    pub fn slice_slots(&self) -> usize {
        self.sched
            .components()
            .map(|sys| sys.replicas())
            .max()
            .unwrap_or(1)
            * self.sched.len().max(1)
    }

    /// Direct access to shard `sys` (failure scheduling, disk
    /// pre-filling, tracing).
    ///
    /// # Panics
    ///
    /// Panics if `sys` is out of range.
    pub fn system_mut(&mut self, sys: usize) -> &mut FtSystem {
        self.sched.component_mut(sys)
    }

    /// Shared access to shard `sys` (checkpoint retrieval, stats).
    ///
    /// # Panics
    ///
    /// Panics if `sys` is out of range.
    pub fn system(&self, sys: usize) -> &FtSystem {
        self.sched.component(sys)
    }

    /// Schedules a whole-cluster checkpoint at the global-time barrier
    /// `at`: every shard captures its canonical state — through the
    /// same [`FtSystem::schedule_checkpoint`] API, hence the same
    /// [`crate::messages::ReplicaState`] a reintegration transfer ships
    /// — at its acting primary's first epoch boundary at or past `at`.
    /// The kernel commits shard actions in global `(time, shard)` order
    /// in both execution modes, so the captures land at a globally
    /// consistent cut and the resulting [`SystemCheckpoint`]s are
    /// bit-identical between [`Parallelism::Sequential`] and
    /// [`Parallelism::Threads`]; capture is pure, so the run itself is
    /// unperturbed. Retrieve per shard via
    /// [`FtCluster::checkpoints`] after (or during) the run.
    pub fn schedule_checkpoint_all(&mut self, at: SimTime) {
        for i in 0..self.sched.len() {
            self.sched.component_mut(i).schedule_checkpoint(at);
        }
    }

    /// Checkpoints shard `sys` has captured so far, in capture order.
    ///
    /// # Panics
    ///
    /// Panics if `sys` is out of range.
    pub fn checkpoints(&self, sys: usize) -> &[SystemCheckpoint] {
        self.sched.component(sys).checkpoints()
    }

    /// Sets the loss probability of every link currently registered on
    /// the shared medium (per-system loss can be set via each system's
    /// [`FtConfig::loss_prob`] before [`FtCluster::add_system`]).
    ///
    /// # Panics
    ///
    /// Panics for `p > 0` if any shard's configuration cannot survive
    /// loss — retransmission disabled, or a detection timeout that
    /// does not dominate worst-case recovery. Turning loss on behind a
    /// raw-channel shard would stall its first dropped boundary and
    /// falsely promote a backup under a live primary, the exact
    /// failure the construction-time guard exists to prevent.
    pub fn set_loss_probability_all(&mut self, p: f64) {
        if p > 0.0 {
            for sys in self.sched.components() {
                FtSystem::assert_loss_tolerant(sys.config());
            }
        }
        self.lan.borrow_mut().set_loss_probability_all(p);
    }

    /// Medium-wide traffic counters.
    pub fn lan_stats(&self) -> LanStats {
        self.lan.borrow().stats()
    }

    /// Runs every shard to completion sequentially and returns their
    /// results in shard order.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no systems.
    pub fn run(&mut self) -> Vec<FtRunResult> {
        self.run_with(Parallelism::Sequential)
    }

    /// Runs every shard to completion under the given [`Parallelism`]
    /// and returns their results in shard order. The results are
    /// bit-identical whichever mode is chosen (see the
    /// [module docs](self) for why).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no systems.
    pub fn run_with(&mut self, parallelism: Parallelism) -> Vec<FtRunResult> {
        assert!(!self.sched.is_empty(), "empty cluster");
        let pool = match parallelism {
            Parallelism::Sequential | Parallelism::Threads(0) => None,
            Parallelism::Threads(_) => {
                let pool = WorkPool::global();
                pool.ensure_workers(parallelism.requested_workers(self.slice_slots()));
                Some(pool)
            }
        };
        self.coordinate(pool)
    }

    /// The coordinator loop shared by both modes: plan each shard's
    /// wave as soon as its previous action commits (shipping every
    /// slice in the wave to the pool, if any), then commit actions
    /// strictly in the kernel's global `(time, shard)` pick order —
    /// and, within a shard's wave, in plan order.
    fn coordinate(&mut self, pool: Option<&'static WorkPool>) -> Vec<FtRunResult> {
        let n = self.sched.len();
        let mut plans: Vec<Option<StepPlan>> = vec![None; n];
        // Completed off-thread slices' hypervisor events, banked per
        // (shard, host) until their turn in the commit order. The pool
        // is process-global and may carry other runs' jobs, so results
        // come back on this run's own channel, never via pool idleness.
        let mut banked: Vec<BTreeMap<usize, HvEvent>> = (0..n).map(|_| BTreeMap::new()).collect();
        let (done_tx, done_rx) = mpsc::channel::<SliceDone>();
        loop {
            for (i, plan_slot) in plans.iter_mut().enumerate() {
                if plan_slot.is_some() || self.sched.is_finished(i) {
                    continue;
                }
                let plan = self.sched.component_mut(i).plan();
                if let (Some(pool), StepPlan::Slices(wave)) = (pool, &plan) {
                    for s in wave {
                        let (host, budget) = (s.host, s.budget);
                        let mut guest = self.sched.component_mut(i).detach_guest(host);
                        let done_tx = done_tx.clone();
                        pool.submit(move || {
                            // A panicking slice must surface on the
                            // coordinator (as it would sequentially),
                            // not strand it waiting for a reply. The
                            // guest is consumed either way, so no
                            // broken state escapes the unwind boundary.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                    let event = guest.run(budget);
                                    (guest, event)
                                }))
                                .map_err(|payload| {
                                    payload
                                        .downcast_ref::<&str>()
                                        .map(|m| (*m).to_owned())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".to_owned())
                                });
                            let _ = done_tx.send(SliceDone {
                                shard: i,
                                host,
                                outcome,
                            });
                        });
                    }
                }
                *plan_slot = Some(plan);
            }
            let Some(i) = self.sched.pick() else {
                break;
            };
            match plans[i].take().expect("picked shard is planned") {
                StepPlan::Finished => {
                    let result = self.sched.component_mut(i).finish_run();
                    self.sched.record(i, result);
                }
                StepPlan::Event => self.sched.component_mut(i).fire_next_event(),
                StepPlan::Slices(wave) => {
                    // Commit the wave in plan order — the same order
                    // sequential mode executes it inline.
                    for s in wave {
                        let event = match pool {
                            // Conservative barrier: this slice is next
                            // in the commit order, so nothing may
                            // commit until it lands. Other finished
                            // slices are banked along the way.
                            Some(_) => loop {
                                if let Some(ev) = banked[i].remove(&s.host) {
                                    break ev;
                                }
                                let done = done_rx.recv().expect("a worker must answer");
                                let (guest, event) = match done.outcome {
                                    Ok(ok) => ok,
                                    Err(msg) => panic!(
                                        "guest slice panicked on a worker \
                                         (shard {}, host {}): {msg}",
                                        done.shard, done.host
                                    ),
                                };
                                self.sched
                                    .component_mut(done.shard)
                                    .attach_guest(done.host, guest);
                                banked[done.shard].insert(done.host, event);
                            },
                            None => self.sched.component_mut(i).run_slice(s.host, s.budget),
                        };
                        self.sched.component_mut(i).commit_slice(s.host, event);
                    }
                }
            }
        }
        self.sched.take_outputs()
    }
}

/// A completed slice coming back from a pool worker. `outcome` carries
/// the guest back on success, or the panic message if the slice
/// panicked — the coordinator re-raises it instead of deadlocking on a
/// reply that will never come.
struct SliceDone {
    shard: usize,
    host: usize,
    outcome: Result<(HvGuest, HvEvent), String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RunEnd;
    use hvft_guest::{build_image, dhrystone_source, hello_source, KernelConfig};
    use hvft_hypervisor::cost::CostModel;
    use hvft_sim::time::{SimDuration, SimTime};

    fn fast() -> FtConfig {
        FtConfig {
            cost: CostModel::functional(),
            ..FtConfig::default()
        }
    }

    /// Everything a run report contains that a schedule change could
    /// possibly disturb.
    fn fingerprint(results: &[FtRunResult]) -> Vec<String> {
        results
            .iter()
            .map(|r| {
                format!(
                    "{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{:?}|{}",
                    r.outcome,
                    r.completion_time,
                    r.console_output,
                    r.failovers,
                    r.messages_per_replica,
                    r.frames_retransmitted,
                    r.frames_suppressed,
                    r.op_latencies,
                    r.lockstep.compared(),
                )
            })
            .collect()
    }

    #[test]
    fn three_shards_finish_with_independent_outputs() {
        let hello = build_image(&KernelConfig::default(), &hello_source("a\n", 1)).unwrap();
        let dhry = build_image(&KernelConfig::default(), &dhrystone_source(200, 0)).unwrap();
        let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 1);
        cluster.add_system(&hello, fast());
        cluster.add_system(&dhry, fast());
        cluster.add_system(&hello, fast());
        let results = cluster.run();
        assert_eq!(results.len(), 3);
        assert!(matches!(results[0].outcome, RunEnd::Exit { code: 42 }));
        assert!(matches!(results[1].outcome, RunEnd::Exit { .. }));
        assert_eq!(results[0].console_output, b"a\n");
        assert_eq!(results[2].console_output, b"a\n");
        for r in &results {
            assert!(r.lockstep.is_clean());
        }
    }

    #[test]
    fn contention_slows_a_shard_down() {
        // One shard alone vs the same shard sharing the wire with two
        // chatty neighbours: the medium is the only coupling, so the
        // lone run must be at least as fast.
        let image = build_image(&KernelConfig::default(), &dhrystone_source(300, 0)).unwrap();
        let solo = {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 5);
            c.add_system(&image, fast());
            c.run()[0].completion_time
        };
        let contended = {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 5);
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            c.run()[0].completion_time
        };
        assert!(
            contended > solo,
            "sharing the medium must cost time: solo {solo}, contended {contended}"
        );
    }

    #[test]
    #[should_panic(expected = "retransmission")]
    fn lan_loss_behind_raw_shards_is_rejected() {
        // Turning loss on after construction must face the same guard
        // as FtConfig::loss_prob: a raw-channel shard would stall its
        // first dropped boundary and falsely promote a backup.
        let image = build_image(&KernelConfig::default(), &hello_source("x", 1)).unwrap();
        let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 1);
        c.add_system(&image, fast());
        c.set_loss_probability_all(0.2);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let image = build_image(&KernelConfig::default(), &dhrystone_source(150, 0)).unwrap();
        let run = || {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 9);
            let cfg = FtConfig {
                loss_prob: 0.15,
                retransmit: Some(SimDuration::from_millis(5)),
                detector_timeout: SimDuration::from_millis(300),
                ..fast()
            };
            for _ in 0..3 {
                c.add_system(&image, cfg);
            }
            fingerprint(&c.run())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        // The tentpole oracle at unit scope: loss, retransmission and a
        // mid-run primary failstop on one shard, three shards, compared
        // across Sequential / Threads(2) / Threads(8) (more threads
        // than shards exercises the idle-worker path).
        let image = build_image(&KernelConfig::default(), &dhrystone_source(250, 5)).unwrap();
        let build = || {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 11);
            let cfg = FtConfig {
                loss_prob: 0.1,
                retransmit: Some(SimDuration::from_millis(5)),
                detector_timeout: SimDuration::from_millis(300),
                backups: 2,
                ..fast()
            };
            for _ in 0..3 {
                c.add_system(&image, cfg);
            }
            c.system_mut(1)
                .schedule_failure(SimTime::from_nanos(2_000_000));
            c
        };
        let sequential = fingerprint(&build().run_with(Parallelism::Sequential));
        for threads in [1, 2, 8] {
            let parallel = fingerprint(&build().run_with(Parallelism::Threads(threads)));
            assert_eq!(
                sequential, parallel,
                "Threads({threads}) diverged from the sequential schedule"
            );
        }
    }

    #[test]
    fn cluster_checkpoint_is_mode_invariant_and_restores_exactly() {
        // Whole-cluster checkpoint at a global-time barrier: every
        // shard captures the same canonical state a reintegration
        // transfer ships, bit-identically in every execution mode,
        // without perturbing the run itself.
        use hvft_hypervisor::hvguest::HvConfig;
        // Big enough that epoch boundaries keep occurring well past the
        // barrier (the capture rides the first boundary at or after it).
        let image = build_image(&KernelConfig::default(), &dhrystone_source(2000, 5)).unwrap();
        let barrier = SimTime::from_nanos(2_000_000);
        let run = |par: Parallelism, checkpoint: bool| {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 11);
            let cfg = FtConfig {
                backups: 2,
                ..fast()
            };
            for _ in 0..3 {
                c.add_system(&image, cfg);
            }
            if checkpoint {
                c.schedule_checkpoint_all(barrier);
            }
            let fp = fingerprint(&c.run_with(par));
            let cks: Vec<Vec<crate::system::SystemCheckpoint>> = (0..c.systems())
                .map(|i| c.checkpoints(i).to_vec())
                .collect();
            (fp, cks)
        };
        let (fp_plain, _) = run(Parallelism::Sequential, false);
        let (fp_seq, cks_seq) = run(Parallelism::Sequential, true);
        assert_eq!(fp_plain, fp_seq, "checkpointing must not perturb the run");
        for (sys, cks) in cks_seq.iter().enumerate() {
            assert_eq!(cks.len(), 1, "shard {sys} must capture exactly once");
            let ck = &cks[0];
            assert!(ck.at >= barrier, "shard {sys} captured before the barrier");
            // Restore through the same API reintegration uses: the
            // captured snapshot restored into a fresh guest reproduces
            // the live state exactly.
            let mut guest = HvGuest::new(&image, CostModel::functional(), HvConfig::default());
            guest.restore(&ck.state.guest);
            assert_eq!(guest.state_hash(), ck.state_hash, "shard {sys} restore");
            assert_eq!(guest.epoch(), ck.epoch, "shard {sys} epoch");
        }
        for threads in [2, 8] {
            let (fp_par, cks_par) = run(Parallelism::Threads(threads), true);
            assert_eq!(fp_seq, fp_par, "Threads({threads}) fingerprint diverged");
            assert_eq!(
                cks_seq, cks_par,
                "Threads({threads}) checkpoints diverged from sequential"
            );
        }
    }

    #[test]
    fn threads_zero_degenerates_to_sequential() {
        let image = build_image(&KernelConfig::default(), &hello_source("z\n", 1)).unwrap();
        let run = |par| {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 3);
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            fingerprint(&c.run_with(par))
        };
        assert_eq!(run(Parallelism::Threads(0)), run(Parallelism::Sequential));
    }
}
