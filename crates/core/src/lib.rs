//! `hvft-core` — hypervisor-based fault tolerance: the paper's primary
//! contribution.
//!
//! This crate implements the replica-coordination protocols of
//! Bressoud & Schneider, *Hypervisor-based Fault-tolerance* (SOSP 1995):
//! a primary virtual machine and its backup execute identical
//! instruction streams on two simulated processors, coordinated only by
//! the hypervisor (rules P1–P7 of §2, plus the §4.3 revision), so that
//! the environment never observes the primary's failure.
//!
//! Entry point: [`system::FtSystem`]. Build a guest image with
//! `hvft-guest`, pick a [`config::FtConfig`], and run:
//!
//! ```
//! use hvft_core::config::FtConfig;
//! use hvft_core::system::{FtSystem, RunEnd};
//! use hvft_guest::{build_image, dhrystone_source, KernelConfig};
//!
//! let image = build_image(&KernelConfig::default(), &dhrystone_source(50, 0)).unwrap();
//! let mut sys = FtSystem::new(&image, FtConfig::default());
//! let result = sys.run();
//! assert!(matches!(result.outcome, RunEnd::Exit { .. }));
//! assert!(result.lockstep.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod config;
pub mod lockstep;
pub mod messages;
pub mod system;

pub use chain::{ChainEnd, ChainResult, TChain};
pub use config::{FailureSpec, FtConfig, ProtocolVariant};
pub use lockstep::{Divergence, LockstepChecker};
pub use messages::{DiskCompletion, ForwardedInterrupt, Message};
pub use system::{FailoverInfo, FtRunResult, FtSystem, RunEnd};
