//! `hvft-core` — hypervisor-based fault tolerance: the paper's primary
//! contribution.
//!
//! This crate implements the replica-coordination protocols of
//! Bressoud & Schneider, *Hypervisor-based Fault-tolerance* (SOSP 1995):
//! a primary virtual machine and its backups execute identical
//! instruction streams on simulated processors, coordinated only by the
//! hypervisor (rules P1–P7 of §2, plus the §4.3 revision), so that the
//! environment never observes a primary's failure.
//!
//! The crate is layered the way the paper argues the problem decomposes:
//!
//! - [`protocol`] — the P1–P7 / §4.3 rules as *pure state machines*
//!   ([`protocol::ReplicaEngine`]): events in, effects out, no knowledge
//!   of scheduling, channels, or devices. This is the only place the
//!   rules exist.
//! - [`system`] — [`system::FtSystem`], the realistic discrete-event
//!   driver: `t + 1` hosts with their own clocks, modelled link timing,
//!   a shared disk and console, timeout failure detectors, and
//!   cascading failover.
//! - [`chain`] — [`chain::TChain`], the round-synchronous t-fault chain
//!   on instantaneous links; same engines, different machinery.
//! - [`messages`], [`config`], [`lockstep`] — the wire vocabulary, the
//!   knobs, and the `n`-replica divergence checker.
//! - [`scenario`], [`observer`] — the public front door: the typed,
//!   validating [`scenario::ScenarioBuilder`], the uniform
//!   [`scenario::RunReport`] every driver yields, and the
//!   [`observer::Observer`] hook API onto protocol events.
//!
//! Entry point: [`scenario::Scenario`]. Pick a workload (by name from
//! the `hvft-guest` registry, or by value), configure, run:
//!
//! ```
//! use hvft_core::scenario::Scenario;
//!
//! let report = Scenario::builder()
//!     .workload_named("dhrystone")
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.exit.is_clean_exit());
//! assert!(report.lockstep_clean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod cluster;
pub mod config;
pub mod lockstep;
pub mod messages;
pub mod observer;
pub mod protocol;
pub mod scenario;
pub mod system;

pub use chain::{ChainEnd, ChainResult, TChain};
pub use cluster::{FtCluster, Parallelism};
pub use config::{FailureSpec, FtConfig, ProtocolVariant};
pub use lockstep::{Divergence, LockstepChecker};
pub use messages::{DiskCompletion, ForwardedInterrupt, Message};
pub use observer::{DropReason, Observer, RunStats};
pub use protocol::{Effect, IoGate, Promotion, ReplicaEngine, ReplicaId};
pub use scenario::{
    ClusterScenario, ConfigError, Driver, ExitStatus, RunReport, Runner, Scenario, ScenarioBuilder,
};
pub use system::{FailoverInfo, FtRunResult, FtSystem, RunEnd, WireFrame};
