//! Coordination messages between the primary's and backup's hypervisors.
//!
//! These are the messages of §2's protocol: `[E, Int]` interrupt
//! forwarding (P1), the `[Tme_p]` clock state and `[end, E]` epoch
//! completion (P2), and acknowledgments (P4). Each carries a sequence
//! number so the primary can tell when everything it sent has been
//! acknowledged — the condition rule P2 (original protocol) waits for at
//! every epoch boundary, and the revised protocol of §4.3 waits for only
//! before I/O operations.

use hvft_hypervisor::hvguest::HvGuestSnapshot;
use hvft_hypervisor::vclock::VClock;
use std::rc::Rc;

/// A forwarded interrupt: what `[E, Int]` carries.
///
/// For disk completions this includes the data read, because "processing
/// a read request requires the primary's hypervisor to forward a copy of
/// the data read to the backup" (§4.2) — input must reach both replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForwardedInterrupt {
    /// `eirr` bits to assert at delivery.
    pub irq_bits: u32,
    /// Disk completion payload, if this is a disk interrupt.
    pub disk: Option<DiskCompletion>,
}

/// Payload of a forwarded disk-completion interrupt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskCompletion {
    /// Controller status the guest will read (`disk_status` values).
    pub status: u32,
    /// Block contents for reads whose transfer happened.
    pub data: Option<Vec<u8>>,
}

/// The canonical state of one replica, captured at an epoch boundary
/// and shipped to a repaired processor during reintegration: the guest
/// snapshot plus the driver-level device shadows that rule P3's
/// suppression bookkeeping depends on. Derived caches (decoded blocks,
/// JIT superblocks, TLB front array) are never shipped — the receiver
/// rebuilds them, invisibly to the VM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaState {
    /// The whole virtual machine plus hypervisor bookkeeping.
    pub guest: HvGuestSnapshot,
    /// Disk block-number register shadow.
    pub reg_block: u32,
    /// Disk DMA-address register shadow.
    pub reg_addr: u32,
    /// Disk status register shadow.
    pub disk_status_reg: u32,
    /// Guest-issued disk operation not yet completed at the snapshot:
    /// `(cmd_value, dma_addr)` in `mmio::disk_cmd` encoding. The
    /// receiver records it backup-style (no captured write data) so
    /// rule P7's outstanding-I/O bookkeeping survives the transfer.
    pub inflight: Option<(u32, u32)>,
}

/// A protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// P1: `[E, Int]` — an interrupt received during the primary's epoch
    /// `E`, to be delivered at the end of the backup's epoch `E`.
    Interrupt {
        /// Sender's sequence number.
        seq: u64,
        /// Epoch tag.
        epoch: u64,
        /// The interrupt and any input payload.
        interrupt: ForwardedInterrupt,
    },
    /// P2: `[Tme_p]` — the primary's virtual clock state at the end of
    /// epoch `E`.
    Time {
        /// Sender's sequence number.
        seq: u64,
        /// Epoch whose boundary this snapshot belongs to.
        epoch: u64,
        /// The clock state; the backup performs `Tme_b := Tme_p`.
        vclock: VClock,
    },
    /// P2: `[end, E]` — the primary completed epoch `E`.
    EpochEnd {
        /// Sender's sequence number.
        seq: u64,
        /// The completed epoch.
        epoch: u64,
    },
    /// P4: cumulative acknowledgment of every sequence number up to and
    /// including `upto` (channels are FIFO, so cumulative acks suffice).
    Ack {
        /// Highest sequence number received.
        upto: u64,
    },
    /// Reintegration: one bounded-size chunk of a whole-replica state
    /// transfer taken at an epoch boundary. Chunks are driver traffic —
    /// the receiving engine never sees them — and are unsequenced at
    /// the protocol level (like [`Message::Ack`]); under loss they ride
    /// the link-level ack/retransmission layer like any other frame.
    /// Only the final chunk carries the state object (the simulation
    /// ships structure once; the link model charges per-chunk `bytes`).
    StateChunk {
        /// Epoch boundary at which the snapshot was taken.
        epoch: u64,
        /// Chunk index, `0 .. total`.
        index: u32,
        /// Total chunks in this transfer.
        total: u32,
        /// Modelled payload bytes of this chunk.
        bytes: u32,
        /// The full replica state, present on the final chunk only.
        state: Option<Rc<ReplicaState>>,
    },
}

impl Message {
    /// Approximate wire size in bytes (headers, clock state, protocol
    /// framing), used by the link model. Control messages are one link
    /// message; a forwarded 8 KB disk read becomes the paper's
    /// "9 messages for the data". The `[Tme]` size is calibrated so the
    /// Ethernet→ATM epoch-boundary saving reproduces Figure 4's
    /// 1.84 → 1.66 prediction at 32 K epochs.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Message::Interrupt { interrupt, .. } => {
                let data = interrupt
                    .disk
                    .as_ref()
                    .and_then(|d| d.data.as_ref())
                    .map_or(0, Vec::len);
                64 + data
            }
            Message::Time { .. } => 150,
            Message::EpochEnd { .. } => 60,
            Message::Ack { .. } => 26,
            Message::StateChunk { bytes, .. } => 64 + *bytes as usize,
        }
    }

    /// The sender-side sequence number (acks and state-transfer chunks
    /// are unsequenced at the protocol level).
    pub fn seq(&self) -> Option<u64> {
        match *self {
            Message::Interrupt { seq, .. }
            | Message::Time { seq, .. }
            | Message::EpochEnd { seq, .. } => Some(seq),
            Message::Ack { .. } | Message::StateChunk { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let small = Message::EpochEnd { seq: 1, epoch: 2 };
        assert!(small.wire_bytes() < 100);
        let big = Message::Interrupt {
            seq: 2,
            epoch: 3,
            interrupt: ForwardedInterrupt {
                irq_bits: 2,
                disk: Some(DiskCompletion {
                    status: 2,
                    data: Some(vec![0; 8192]),
                }),
            },
        };
        assert!(big.wire_bytes() > 8192);
    }

    #[test]
    fn disk_read_block_is_nine_link_messages() {
        // The paper: "this requires 9 messages for the data and 1 message
        // for an acknowledgement" on the 10 Mbps Ethernet.
        let link = hvft_net::link::LinkSpec::ethernet_10mbps();
        let msg = Message::Interrupt {
            seq: 0,
            epoch: 0,
            interrupt: ForwardedInterrupt {
                irq_bits: 2,
                disk: Some(DiskCompletion {
                    status: 2,
                    data: Some(vec![0; 8192]),
                }),
            },
        };
        assert_eq!(link.messages_for(msg.wire_bytes()), 9);
    }

    #[test]
    fn seq_extraction() {
        assert_eq!(Message::Ack { upto: 9 }.seq(), None);
        assert_eq!(Message::EpochEnd { seq: 4, epoch: 0 }.seq(), Some(4));
    }
}
