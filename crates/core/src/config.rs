//! Configuration of the fault-tolerant virtual-machine system.

use hvft_hypervisor::cost::CostModel;
use hvft_hypervisor::hvguest::HvConfig;
use hvft_net::link::LinkSpec;
use hvft_sim::time::{SimDuration, SimTime};

/// Which replica-coordination protocol to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolVariant {
    /// The §2 protocol: at every epoch boundary the primary awaits
    /// acknowledgments for all messages previously sent (rule P2).
    Old,
    /// The §4.3 revision: epoch boundaries do not wait; instead the
    /// primary must have all messages acknowledged before initiating any
    /// I/O operation (the only way VM state is revealed).
    New,
}

/// Failure injection: when (if ever) the primary's processor failstops.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailureSpec {
    /// No failure.
    #[default]
    None,
    /// The primary halts at this simulated time.
    At(SimTime),
}

/// Full system configuration.
#[derive(Clone, Copy, Debug)]
pub struct FtConfig {
    /// Per-guest hypervisor configuration (epoch length, TLB policy…).
    pub hv: HvConfig,
    /// Timing cost model.
    pub cost: CostModel,
    /// Coordination link between the two hypervisors.
    pub link: LinkSpec,
    /// Protocol variant.
    pub protocol: ProtocolVariant,
    /// Number of ordered backups (`t` of the t-fault-tolerant VM). The
    /// paper's prototype is `1`; any `t ≥ 1` runs the same engines with
    /// cascading failover.
    pub backups: usize,
    /// Primary failure injection. Additional (cascading) failures can
    /// be scheduled with `FtSystem::schedule_failure`.
    pub failure: FailureSpec,
    /// Backup's failure-detection timeout. Must exceed the longest
    /// legitimate message gap (one epoch of execution plus queueing);
    /// the backup only suspects the primary after draining the channel,
    /// matching the paper's detection assumption.
    pub detector_timeout: SimDuration,
    /// Disk size in blocks.
    pub disk_blocks: u32,
    /// Probability a disk operation reports an uncertain outcome (IO2),
    /// independent of failover-synthesized ones.
    pub disk_fault_prob: f64,
    /// Base RNG seed for the shared environment (disk faults, etc.).
    pub seed: u64,
    /// Safety limit on total retired instructions per guest.
    pub max_insns: u64,
    /// Whether to hash both VM states at every epoch boundary and record
    /// divergence (costs simulation wall time, not simulated time).
    pub lockstep_check: bool,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            hv: HvConfig::default(),
            cost: CostModel::hp9000_720(),
            link: LinkSpec::ethernet_10mbps(),
            protocol: ProtocolVariant::Old,
            backups: 1,
            failure: FailureSpec::None,
            detector_timeout: SimDuration::from_millis(60),
            disk_blocks: 128,
            disk_fault_prob: 0.0,
            seed: 0,
            max_insns: 2_000_000_000,
            lockstep_check: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_prototype() {
        let c = FtConfig::default();
        assert_eq!(c.protocol, ProtocolVariant::Old);
        assert_eq!(c.hv.epoch_len, 4096);
        assert_eq!(c.link.bits_per_sec, 10_000_000);
        assert_eq!(c.failure, FailureSpec::None);
        assert_eq!(c.backups, 1, "the paper's prototype has one backup");
    }

    #[test]
    fn detector_timeout_exceeds_link_latency() {
        let c = FtConfig::default();
        assert!(c.detector_timeout > c.link.payload_latency(9000) * 4);
    }
}
