//! Configuration of the fault-tolerant virtual-machine system.

use hvft_hypervisor::cost::CostModel;
use hvft_hypervisor::hvguest::HvConfig;
use hvft_net::link::LinkSpec;
use hvft_sim::time::{SimDuration, SimTime};

/// Which replica-coordination protocol to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolVariant {
    /// The §2 protocol: at every epoch boundary the primary awaits
    /// acknowledgments for all messages previously sent (rule P2).
    Old,
    /// The §4.3 revision: epoch boundaries do not wait; instead the
    /// primary must have all messages acknowledged before initiating any
    /// I/O operation (the only way VM state is revealed).
    New,
}

/// Failure injection: when (if ever) the primary's processor failstops.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailureSpec {
    /// No failure.
    #[default]
    None,
    /// The primary halts at this simulated time.
    At(SimTime),
}

/// Full system configuration.
#[derive(Clone, Copy, Debug)]
pub struct FtConfig {
    /// Per-guest hypervisor configuration (epoch length, TLB policy…).
    pub hv: HvConfig,
    /// Timing cost model.
    pub cost: CostModel,
    /// Coordination link between the two hypervisors.
    pub link: LinkSpec,
    /// Protocol variant.
    pub protocol: ProtocolVariant,
    /// Per-message loss probability on every coordination link. The §2
    /// protocols assume a lossless network; any value above `0.0`
    /// models the lossy LAN of §4.3 and requires [`FtConfig::retransmit`]
    /// for the run to make progress (without it, a lost `[Tme]` or
    /// `[end]` permanently stalls an epoch boundary).
    pub loss_prob: f64,
    /// Retransmission timeout of the link-level ack/retransmit layer
    /// (`hvft-net::reliable`), or `None` to run on raw channels as the
    /// §2 prototype does. Should comfortably exceed the worst-case
    /// round trip — an 8 KB disk-read forward takes ≈ 7 ms on the
    /// 10 Mbps Ethernet — and divide the failure-detection timeout many
    /// times over, so a run of unlucky drops is recovered well before a
    /// backup falsely suspects the primary.
    pub retransmit: Option<SimDuration>,
    /// Bounded NIC-queue backpressure: a sender whose outbound queueing
    /// delay (`busy_until - now`) exceeds this bound blocks until the
    /// queue drains below it, making the §4.3 (New) saturated regime
    /// physical instead of infinite-buffer. `None` (the default)
    /// preserves the paper's NP-model assumption of unbounded buffering
    /// — Table 1 runs are unchanged.
    pub nic_queue_bound: Option<SimDuration>,
    /// Number of ordered backups (`t` of the t-fault-tolerant VM). The
    /// paper's prototype is `1`; any `t ≥ 1` runs the same engines with
    /// cascading failover.
    pub backups: usize,
    /// Primary failure injection. Additional (cascading) failures can
    /// be scheduled with `FtSystem::schedule_failure`.
    pub failure: FailureSpec,
    /// Backup's failure-detection timeout. Must exceed the longest
    /// legitimate message gap (one epoch of execution plus queueing);
    /// the backup only suspects the primary after draining the channel,
    /// matching the paper's detection assumption.
    pub detector_timeout: SimDuration,
    /// Disk size in blocks.
    pub disk_blocks: u32,
    /// Probability a disk operation reports an uncertain outcome (IO2),
    /// independent of failover-synthesized ones.
    pub disk_fault_prob: f64,
    /// Base RNG seed for the shared environment (disk faults, etc.).
    pub seed: u64,
    /// Safety limit on total retired instructions per guest.
    pub max_insns: u64,
    /// Whether to hash both VM states at every epoch boundary and record
    /// divergence (costs simulation wall time, not simulated time).
    pub lockstep_check: bool,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            hv: HvConfig::default(),
            cost: CostModel::hp9000_720(),
            link: LinkSpec::ethernet_10mbps(),
            protocol: ProtocolVariant::Old,
            loss_prob: 0.0,
            retransmit: None,
            nic_queue_bound: None,
            backups: 1,
            failure: FailureSpec::None,
            detector_timeout: SimDuration::from_millis(60),
            disk_blocks: 128,
            disk_fault_prob: 0.0,
            seed: 0,
            max_insns: 2_000_000_000,
            lockstep_check: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_prototype() {
        let c = FtConfig::default();
        assert_eq!(c.protocol, ProtocolVariant::Old);
        assert_eq!(c.hv.epoch_len, 4096);
        assert_eq!(c.link.bits_per_sec, 10_000_000);
        assert_eq!(c.failure, FailureSpec::None);
        assert_eq!(c.backups, 1, "the paper's prototype has one backup");
    }

    #[test]
    fn default_network_is_lossless_and_raw() {
        let c = FtConfig::default();
        assert_eq!(c.loss_prob, 0.0);
        assert!(
            c.retransmit.is_none(),
            "the §2 prototype runs on raw lossless channels"
        );
        assert!(
            c.nic_queue_bound.is_none(),
            "the paper's NP model assumes unbounded NIC buffering"
        );
    }

    #[test]
    fn detector_timeout_exceeds_link_latency() {
        let c = FtConfig::default();
        assert!(c.detector_timeout > c.link.payload_latency(9000) * 4);
    }
}
