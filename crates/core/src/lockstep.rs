//! Lockstep divergence detection.
//!
//! Rules P1–P6 guarantee that "the backup virtual machine executes the
//! same sequence of instructions (each having the same effect) as the
//! primary virtual machine". This checker verifies that guarantee
//! empirically: each replica reports a hash of its complete VM state at
//! every epoch boundary (taken *before* boundary processing, so both
//! replicas hash at the identical instruction-stream point), and the
//! checker compares hashes for equal epoch numbers.

use std::collections::BTreeMap;

/// One recorded divergence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Epoch at whose boundary the states differed.
    pub epoch: u64,
    /// Primary's state hash.
    pub primary: u64,
    /// Backup's state hash.
    pub backup: u64,
}

/// Collects per-epoch state hashes from both replicas and reports
/// mismatches.
#[derive(Clone, Debug, Default)]
pub struct LockstepChecker {
    pending: BTreeMap<u64, (Option<u64>, Option<u64>)>,
    compared: u64,
    divergences: Vec<Divergence>,
}

impl LockstepChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `host` (0 = primary, 1 = backup) reaching the end of
    /// `epoch` with the given state hash.
    pub fn record(&mut self, host: u8, epoch: u64, hash: u64) {
        let slot = self.pending.entry(epoch).or_default();
        match host {
            0 => slot.0 = Some(hash),
            _ => slot.1 = Some(hash),
        }
        if let (Some(p), Some(b)) = *slot {
            self.pending.remove(&epoch);
            self.compared += 1;
            if p != b {
                self.divergences.push(Divergence {
                    epoch,
                    primary: p,
                    backup: b,
                });
            }
        }
    }

    /// Number of epochs for which both hashes arrived and were compared.
    pub fn compared(&self) -> u64 {
        self.compared
    }

    /// All recorded divergences, in epoch order.
    pub fn divergences(&self) -> &[Divergence] {
        &self.divergences
    }

    /// Whether every compared epoch matched.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_hashes_are_clean() {
        let mut c = LockstepChecker::new();
        for e in 0..10 {
            c.record(0, e, 0xAB + e);
            c.record(1, e, 0xAB + e);
        }
        assert!(c.is_clean());
        assert_eq!(c.compared(), 10);
    }

    #[test]
    fn mismatch_is_recorded() {
        let mut c = LockstepChecker::new();
        c.record(0, 3, 1);
        c.record(1, 3, 2);
        assert!(!c.is_clean());
        assert_eq!(
            c.divergences(),
            &[Divergence {
                epoch: 3,
                primary: 1,
                backup: 2
            }]
        );
    }

    #[test]
    fn out_of_order_and_partial_epochs() {
        let mut c = LockstepChecker::new();
        // The backup lags; epochs arrive interleaved.
        c.record(0, 0, 7);
        c.record(0, 1, 8);
        c.record(1, 0, 7);
        assert_eq!(c.compared(), 1);
        assert!(c.is_clean());
        // Epoch 1 never compared (backup died) — still clean.
        assert_eq!(c.compared(), 1);
    }
}
