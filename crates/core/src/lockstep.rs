//! Lockstep divergence detection across `n` replicas.
//!
//! Rules P1–P6 guarantee that every backup virtual machine "executes the
//! same sequence of instructions (each having the same effect) as the
//! primary virtual machine". This checker verifies that guarantee
//! empirically, for one primary plus any number of ordered backups: each
//! replica reports a hash of its complete VM state at every epoch
//! boundary (taken *before* boundary processing, so all replicas hash at
//! the identical instruction-stream point), and the checker compares
//! every report for an epoch against the first one recorded.
//!
//! A t-fault chain needs exactly this generalization: with `t + 1`
//! replicas, an epoch may receive up to `t + 1` hashes, and a divergence
//! must say *which pair* disagreed so the failing replica can be
//! identified (the reference hash travels with the report that set it).

/// One recorded divergence: a pair of replicas whose state hashes
/// differed at the same epoch boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Epoch at whose boundary the states differed.
    pub epoch: u64,
    /// The replica whose hash set the epoch's reference (first report).
    pub replica_a: usize,
    /// Reference replica's state hash.
    pub hash_a: u64,
    /// The replica that disagreed with the reference.
    pub replica_b: usize,
    /// Disagreeing replica's state hash.
    pub hash_b: u64,
}

/// Per-epoch record: the reference report plus how many reports arrived.
#[derive(Clone, Copy, Debug)]
struct EpochRecord {
    reference: (usize, u64),
    reports: u32,
}

/// How far behind the most recent reported epoch records are retained.
/// Replicas lag each other by at most a couple of epochs (the backup
/// runs one epoch behind the primary, plus channel latency), so a
/// generous window keeps memory O(window) over billion-instruction
/// runs without ever dropping a comparison that could still happen.
const RETAIN_EPOCHS: u64 = 1024;

/// Collects per-epoch state hashes from any number of replicas and
/// reports mismatches.
#[derive(Clone, Debug, Default)]
pub struct LockstepChecker {
    epochs: std::collections::BTreeMap<u64, EpochRecord>,
    compared: u64,
    divergences: Vec<Divergence>,
}

impl LockstepChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `replica` reaching the end of `epoch` with the given
    /// state hash. The first report for an epoch becomes its reference;
    /// every later report is compared against it. Records more than a
    /// fixed window (`RETAIN_EPOCHS`) behind the newest reported epoch
    /// are pruned, bounding memory for arbitrarily long runs.
    pub fn record(&mut self, replica: usize, epoch: u64, hash: u64) {
        if epoch > RETAIN_EPOCHS {
            let keep_from = epoch - RETAIN_EPOCHS;
            if self
                .epochs
                .first_key_value()
                .is_some_and(|(&e, _)| e < keep_from)
            {
                self.epochs = self.epochs.split_off(&keep_from);
            }
        }
        match self.epochs.get_mut(&epoch) {
            None => {
                self.epochs.insert(
                    epoch,
                    EpochRecord {
                        reference: (replica, hash),
                        reports: 1,
                    },
                );
            }
            Some(rec) => {
                rec.reports += 1;
                self.compared += 1;
                let (ref_replica, ref_hash) = rec.reference;
                if hash != ref_hash {
                    self.divergences.push(Divergence {
                        epoch,
                        replica_a: ref_replica,
                        hash_a: ref_hash,
                        replica_b: replica,
                        hash_b: hash,
                    });
                }
            }
        }
    }

    /// Number of cross-replica comparisons performed (an epoch reported
    /// by `k` replicas contributes `k - 1`).
    pub fn compared(&self) -> u64 {
        self.compared
    }

    /// All recorded divergences, in the order they were detected.
    pub fn divergences(&self) -> &[Divergence] {
        &self.divergences
    }

    /// Whether every comparison matched.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Number of replicas that reported `epoch` so far.
    pub fn reports_for(&self, epoch: u64) -> u32 {
        self.epochs.get(&epoch).map_or(0, |r| r.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_hashes_are_clean() {
        let mut c = LockstepChecker::new();
        for e in 0..10 {
            c.record(0, e, 0xAB + e);
            c.record(1, e, 0xAB + e);
        }
        assert!(c.is_clean());
        assert_eq!(c.compared(), 10);
    }

    #[test]
    fn mismatch_reports_the_pair() {
        let mut c = LockstepChecker::new();
        c.record(0, 3, 1);
        c.record(1, 3, 2);
        assert!(!c.is_clean());
        assert_eq!(
            c.divergences(),
            &[Divergence {
                epoch: 3,
                replica_a: 0,
                hash_a: 1,
                replica_b: 1,
                hash_b: 2
            }]
        );
    }

    #[test]
    fn out_of_order_and_partial_epochs() {
        let mut c = LockstepChecker::new();
        // The backup lags; epochs arrive interleaved.
        c.record(0, 0, 7);
        c.record(0, 1, 8);
        c.record(1, 0, 7);
        assert_eq!(c.compared(), 1);
        assert!(c.is_clean());
        // Epoch 1 never compared (backup died) — still clean.
        assert_eq!(c.reports_for(1), 1);
    }

    #[test]
    fn n_replicas_compare_against_the_first_report() {
        let mut c = LockstepChecker::new();
        for r in 0..4 {
            c.record(r, 0, 0xFEED);
        }
        assert!(c.is_clean());
        assert_eq!(c.compared(), 3);
        // A fifth replica disagrees: exactly one divergence, naming the
        // reference replica and the deviant.
        c.record(4, 0, 0xBAD);
        assert_eq!(c.divergences().len(), 1);
        let d = c.divergences()[0];
        assert_eq!((d.replica_a, d.replica_b), (0, 4));
        assert_eq!((d.hash_a, d.hash_b), (0xFEED, 0xBAD));
    }

    #[test]
    fn old_records_are_pruned_to_a_window() {
        let mut c = LockstepChecker::new();
        for e in 0..(RETAIN_EPOCHS * 3) {
            c.record(0, e, e);
            c.record(1, e, e);
        }
        assert!(c.is_clean());
        assert_eq!(c.compared(), RETAIN_EPOCHS * 3);
        // Ancient epochs are gone; recent ones remain queryable.
        assert_eq!(c.reports_for(0), 0);
        assert_eq!(c.reports_for(RETAIN_EPOCHS * 3 - 1), 2);
    }

    #[test]
    fn divergence_between_two_backups_is_caught() {
        let mut c = LockstepChecker::new();
        c.record(0, 5, 10);
        c.record(1, 5, 10);
        c.record(2, 5, 11);
        assert_eq!(c.compared(), 2);
        assert_eq!(c.divergences().len(), 1);
        assert_eq!(c.divergences()[0].replica_b, 2);
    }
}
