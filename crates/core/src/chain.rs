//! The `t`-fault-tolerant generalization as a round-synchronous chain.
//!
//! §2 of the paper: "Our protocols are for a single backup, so we
//! implement a 1-fault-tolerant virtual machine; generalization to
//! t-fault-tolerant virtual machines is straightforward." This module
//! implements that generalization as an epoch-synchronous replica
//! chain: one primary plus `t` ordered backups, all executing identical
//! instruction streams; when the current primary failstops, the next
//! live replica in the chain promotes itself, up to `t` times.
//!
//! The chain runs the *same* [`crate::protocol::ReplicaEngine`] state
//! machines as the realistic DES in [`crate::system::FtSystem`] — the
//! P1–P7 rule logic is not re-implemented here. What changes is only
//! the machinery the rules are abstract over: replicas advance in
//! lockstep rounds of one epoch, the transport is hvft-net's
//! [`InstantLink`] (messages reduced to their information content,
//! delivered within the round), and the environment is the console plus
//! timer. That is exactly the part the paper calls straightforward —
//! and this module proves it by running `t + 1` replicas through
//! arbitrary failure schedules and checking that states stay identical
//! and the survivor finishes the workload with the reference result.

use crate::config::ProtocolVariant;
use crate::lockstep::LockstepChecker;
use crate::messages::Message;
use crate::observer::Observer;
use crate::protocol::{apply_to_guest, Effect, ReplicaEngine};
use crate::system::FailoverInfo;
use hvft_hypervisor::cost::CostModel;
use hvft_hypervisor::hvguest::{HvConfig, HvEvent, HvGuest, HvStats};
use hvft_isa::program::Program;
use hvft_machine::mem::IO_BASE;
use hvft_net::transport::{InstantLink, Transport};
use hvft_sim::sched::Component;
use hvft_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Why a chain run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainEnd {
    /// The workload exited with this code on the acting primary.
    Exit {
        /// Guest exit code.
        code: u32,
    },
    /// More processors failed than the chain tolerates (> t).
    Exhausted,
    /// Replicas diverged at an epoch boundary (protocol violation).
    Diverged {
        /// The epoch at whose boundary hashes differed.
        epoch: u64,
    },
    /// The epoch budget ran out (guard).
    EpochLimit,
}

/// Result of a chain run.
#[derive(Clone, Debug)]
pub struct ChainResult {
    /// Outcome.
    pub end: ChainEnd,
    /// Epochs executed.
    pub epochs: u64,
    /// Number of primaries that failstopped during the run.
    pub failures: usize,
    /// Console bytes, tagged with the replica that (as acting primary)
    /// emitted them.
    pub console: Vec<(usize, u8)>,
    /// Cross-replica state-hash comparisons performed.
    pub comparisons: u64,
    /// Every promotion in order: the epoch it happened at, with `at`
    /// carrying the promoted replica's accumulated guest time (the
    /// chain is round-synchronous and has no global clock).
    pub promotions: Vec<FailoverInfo>,
    /// Simulated guest time accumulated by the acting primary (zero if
    /// the chain was exhausted).
    pub completion_time: SimDuration,
    /// Hypervisor statistics per replica, in chain order (default for
    /// failstopped replicas).
    pub replica_stats: Vec<HvStats>,
}

/// One chain member: a hypervised guest plus its protocol engine.
struct Replica {
    guest: HvGuest,
    engine: ReplicaEngine,
}

/// A `t`-fault-tolerant virtual machine: primary + `t` ordered backups.
pub struct TChain {
    replicas: Vec<Option<Replica>>,
    /// Index of the acting primary (first live replica).
    head: usize,
    epoch: u64,
    console: Vec<(usize, u8)>,
    lockstep: LockstepChecker,
    /// `links[&(i, j)]` carries messages from replica `i` to `j`.
    links: BTreeMap<(usize, usize), InstantLink<Message>>,
    /// Epoch of each promotion, in promotion order.
    promotions: Vec<FailoverInfo>,
    /// Run observers (see [`crate::observer::Observer`]); hook sites
    /// are the chain's round boundaries and promotions.
    observers: Vec<Box<dyn Observer>>,
}

impl TChain {
    /// Boots `t + 1` replicas of `image`. Each replica's machine gets a
    /// different TLB seed — as in the DES system, hardware
    /// non-determinism must be survivable. The chain's instantaneous
    /// links acknowledge within the round, so both protocol variants
    /// behave identically — running them through the same engine is
    /// precisely the point.
    ///
    /// This is the validated construction path used by the scenario
    /// layer; [`crate::scenario::Scenario::builder`] with
    /// [`crate::scenario::Driver::Chain`] is the public front door and
    /// validates configurations instead of panicking.
    pub(crate) fn build(
        image: &Program,
        t: usize,
        cost: CostModel,
        hv: HvConfig,
        variant: ProtocolVariant,
    ) -> Self {
        assert!(t >= 1, "a t-fault-tolerant chain needs t >= 1");
        let n = t + 1;
        let replicas = (0..n)
            .map(|i| {
                let mut cfg = hv;
                cfg.tlb_seed = hv.tlb_seed.wrapping_add(1 + i as u64);
                let engine = if i == 0 {
                    ReplicaEngine::new_primary(0, (1..n).collect(), variant)
                } else {
                    ReplicaEngine::new_backup(i, 0, variant)
                };
                Some(Replica {
                    guest: HvGuest::new(image, cost, cfg),
                    engine,
                })
            })
            .collect();
        let mut links = BTreeMap::new();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    links.insert((from, to), InstantLink::new());
                }
            }
        }
        TChain {
            replicas,
            head: 0,
            epoch: 0,
            console: Vec::new(),
            lockstep: LockstepChecker::new(),
            links,
            promotions: Vec::new(),
            observers: Vec::new(),
        }
    }

    /// Number of live replicas.
    pub fn live(&self) -> usize {
        self.replicas.iter().flatten().count()
    }

    /// Registers a run observer. The chain fires the epoch-boundary and
    /// failover hooks; its instantaneous links carry no observable wire
    /// traffic.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// Removes and returns the registered observers.
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        std::mem::take(&mut self.observers)
    }

    /// Failstops the acting primary; the next live replica promotes.
    /// Returns `false` if no replica is left to promote.
    pub fn fail_primary(&mut self) -> bool {
        let dead = self.head;
        self.replicas[dead] = None;
        for (&(from, to), link) in self.links.iter_mut() {
            if from == dead || to == dead {
                link.sever();
            }
        }
        match self.replicas.iter().position(Option::is_some) {
            Some(next) => {
                self.head = next;
                let survivors: Vec<usize> = (0..self.replicas.len())
                    .filter(|&j| j != next && self.replicas[j].is_some())
                    .collect();
                let promoted = self.replicas[next].as_mut().expect("next is live");
                promoted.engine.promote_running(survivors);
                let info = FailoverInfo {
                    // The chain is round-synchronous: promotion "time"
                    // is the promoted replica's accumulated guest time.
                    at: SimTime::ZERO + promoted.guest.elapsed(),
                    epoch: self.epoch,
                    uncertain_synthesized: false,
                };
                self.promotions.push(info);
                for obs in &mut self.observers {
                    obs.failover(&info);
                }
                true
            }
            None => false,
        }
    }

    /// Applies engine effects for replica `i`; sends go onto the links,
    /// everything else goes through the shared guest applier. Purely
    /// guest-local: the chain has no disk and holds no I/O.
    fn process_effects(&mut self, i: usize, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if let Some(link) = self.links.get_mut(&(i, to)) {
                        let bytes = msg.wire_bytes();
                        let _ = link.send(SimTime::ZERO, bytes, msg);
                    }
                }
                Effect::SynthesizeUncertain | Effect::ResumeHeldIo => {
                    unreachable!("the chain performs no device I/O")
                }
                guest_local => {
                    if let Some(r) = self.replicas[i].as_mut() {
                        apply_to_guest(&guest_local, &mut r.guest);
                    }
                }
            }
        }
    }

    /// Drains every link to a fixpoint, feeding messages to the
    /// receiving engines in deterministic `(from, to)` order.
    fn pump_messages(&mut self) {
        loop {
            let mut fired = false;
            let pairs: Vec<(usize, usize)> = self.links.keys().copied().collect();
            for (from, to) in pairs {
                let Some(msg) = self
                    .links
                    .get_mut(&(from, to))
                    .and_then(|l| l.pop_ready(SimTime::ZERO))
                else {
                    continue;
                };
                fired = true;
                let Some(r) = self.replicas[to].as_mut() else {
                    continue;
                };
                let effects = r.engine.message_received(from, msg);
                self.process_effects(to, effects);
            }
            if !fired {
                return;
            }
        }
    }

    /// Runs every live replica through one epoch (or to workload exit).
    ///
    /// Returns `Some(end)` when the run is over.
    fn step_epoch(&mut self, budget: SimDuration) -> Option<ChainEnd> {
        let mut exit_code: Option<u32> = None;
        let head = self.head;
        let mut at_boundary: Vec<usize> = Vec::new();
        for i in 0..self.replicas.len() {
            let is_primary = i == head;
            let Some(replica) = self.replicas[i].as_mut() else {
                continue;
            };
            loop {
                match replica.guest.run(budget) {
                    HvEvent::EpochEnd => {
                        self.lockstep
                            .record(i, replica.guest.epoch(), replica.guest.state_hash());
                        at_boundary.push(i);
                        break;
                    }
                    HvEvent::MmioRead { paddr } => {
                        let v = match paddr.wrapping_sub(IO_BASE) {
                            hvft_devices::mmio::CONSOLE_REG_STATUS => 1,
                            _ => 0,
                        };
                        replica.guest.finish_mmio_read(v);
                    }
                    HvEvent::MmioWrite { paddr, value } => {
                        // Output suppression at backups, exactly as in
                        // the DES system.
                        if is_primary
                            && paddr.wrapping_sub(IO_BASE) == hvft_devices::mmio::CONSOLE_REG_TX
                        {
                            self.console.push((i, value as u8));
                        }
                        replica.guest.finish_mmio_write();
                    }
                    HvEvent::Diag { value, code } => {
                        if code == hvft_guest::layout::diag::EXIT {
                            if is_primary {
                                exit_code = Some(value);
                            }
                            break;
                        }
                    }
                    HvEvent::Halted => break,
                    HvEvent::BudgetExhausted => return Some(ChainEnd::EpochLimit),
                    HvEvent::Idle => return Some(ChainEnd::EpochLimit),
                }
            }
        }
        if !self.observers.is_empty() {
            for &i in &at_boundary {
                let (epoch, at) = {
                    let r = self.replicas[i].as_ref().expect("boundary replica is live");
                    (r.guest.epoch(), SimTime::ZERO + r.guest.elapsed())
                };
                for obs in &mut self.observers {
                    obs.epoch_boundary(i, epoch, at);
                }
            }
        }
        self.epoch += 1;
        if !self.lockstep.is_clean() {
            return Some(ChainEnd::Diverged { epoch: self.epoch });
        }
        if let Some(code) = exit_code {
            return Some(ChainEnd::Exit { code });
        }
        // Boundary processing through the engines: the primary issues
        // [Tme]/[end], backups wait for them; the instant links resolve
        // the whole exchange (including acknowledgments) within the
        // round.
        for i in at_boundary {
            let Some(r) = self.replicas[i].as_mut() else {
                continue;
            };
            let epoch = r.guest.epoch();
            let vclock = r.guest.vclock.snapshot();
            let effects = r.engine.boundary_reached(epoch, vclock);
            self.process_effects(i, effects);
        }
        self.pump_messages();
        for (i, r) in self.replicas.iter().enumerate() {
            if let Some(r) = r {
                debug_assert!(
                    r.engine.is_running(),
                    "replica {i} stuck after the round's message pump"
                );
            }
        }
        None
    }

    /// Runs to completion, failstopping the acting primary at each epoch
    /// number listed in `failures_at` (ascending).
    ///
    /// The loop itself is the shared scheduler kernel's: the chain is
    /// one [`hvft_sim::sched::Component`] whose clock is its round
    /// number, advanced one round per scheduling decision.
    pub fn run(&mut self, failures_at: &[u64], max_epochs: u64) -> ChainResult {
        let mut rounds = ChainRounds {
            chain: self,
            failures_at: failures_at.to_vec(),
            next_failure: 0,
            failures: 0,
            max_epochs,
            budget: SimDuration::from_secs(10),
        };
        hvft_sim::sched::run_solo(&mut rounds)
    }

    fn result(&self, end: ChainEnd, failures: usize) -> ChainResult {
        ChainResult {
            end,
            epochs: self.epoch,
            failures,
            console: self.console.clone(),
            comparisons: self.lockstep.compared(),
            promotions: self.promotions.clone(),
            completion_time: self.replicas[self.head]
                .as_ref()
                .map(|r| r.guest.elapsed())
                .unwrap_or(SimDuration::ZERO),
            replica_stats: self
                .replicas
                .iter()
                .map(|r| r.as_ref().map(|r| *r.guest.stats()).unwrap_or_default())
                .collect(),
        }
    }
}

/// One kernel component wrapping a chain run: the chain is
/// round-synchronous, so its "clock" is simply the round number, and
/// each `advance` injects due failstops and executes one epoch round.
struct ChainRounds<'a> {
    chain: &'a mut TChain,
    failures_at: Vec<u64>,
    next_failure: usize,
    failures: usize,
    max_epochs: u64,
    budget: SimDuration,
}

impl Component for ChainRounds<'_> {
    type Output = ChainResult;

    fn next_action_time(&self) -> Option<SimTime> {
        Some(SimTime::from_nanos(self.chain.epoch))
    }

    fn advance(&mut self) -> Option<ChainResult> {
        if self.chain.epoch >= self.max_epochs {
            return Some(self.chain.result(ChainEnd::EpochLimit, self.failures));
        }
        if let Some(&at) = self.failures_at.get(self.next_failure) {
            if self.chain.epoch >= at {
                self.next_failure += 1;
                self.failures += 1;
                if !self.chain.fail_primary() {
                    return Some(self.chain.result(ChainEnd::Exhausted, self.failures));
                }
            }
        }
        self.chain
            .step_epoch(self.budget)
            .map(|end| self.chain.result(end, self.failures))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_guest::{build_image, dhrystone_source, hello_source, KernelConfig};

    fn image() -> Program {
        let kernel = KernelConfig {
            tick_period_us: 1000,
            tick_work: 2,
            ..KernelConfig::default()
        };
        build_image(&kernel, &dhrystone_source(1_500, 6)).unwrap()
    }

    fn chain(t: usize) -> TChain {
        let hv = HvConfig {
            epoch_len: 1024,
            ..HvConfig::default()
        };
        TChain::build(
            &image(),
            t,
            CostModel::functional(),
            hv,
            ProtocolVariant::Old,
        )
    }

    fn reference_code() -> u32 {
        let mut c = chain(1);
        match c.run(&[], 100_000).end {
            ChainEnd::Exit { code } => code,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failure_free_chain_stays_in_lockstep() {
        let mut c = chain(3);
        let r = c.run(&[], 100_000);
        assert!(matches!(r.end, ChainEnd::Exit { .. }), "{:?}", r.end);
        assert_eq!(c.live(), 4);
        assert_eq!(r.failures, 0);
        // Every boundary compared all four replicas.
        assert!(r.comparisons >= 3 * (r.epochs - 1), "{:?}", r.comparisons);
    }

    #[test]
    fn tolerates_exactly_t_failures() {
        let code = reference_code();
        for t in 1..=3usize {
            let mut c = chain(t);
            // Fail one primary every 3 epochs, t times.
            let fails: Vec<u64> = (1..=t as u64).map(|k| k * 3).collect();
            let r = c.run(&fails, 100_000);
            match r.end {
                ChainEnd::Exit { code: got } => {
                    assert_eq!(
                        got, code,
                        "t={t}: survivor must produce the reference result"
                    )
                }
                other => panic!("t={t}: {other:?}"),
            }
            assert_eq!(r.failures, t);
            assert_eq!(c.live(), 1, "t={t}: exactly the survivor remains");
        }
    }

    #[test]
    fn both_protocol_variants_drive_the_chain_identically() {
        let img = image();
        let hv = HvConfig {
            epoch_len: 1024,
            ..HvConfig::default()
        };
        let run = |variant| {
            let mut c = TChain::build(&img, 2, CostModel::functional(), hv, variant);
            let r = c.run(&[4], 100_000);
            match r.end {
                ChainEnd::Exit { code } => (code, r.epochs),
                other => panic!("{variant:?}: {other:?}"),
            }
        };
        assert_eq!(run(ProtocolVariant::Old), run(ProtocolVariant::New));
    }

    #[test]
    fn t_plus_one_failures_exhaust_the_chain() {
        let mut c = chain(2);
        let r = c.run(&[1, 2, 3], 100_000);
        assert_eq!(r.end, ChainEnd::Exhausted);
        assert_eq!(r.failures, 3);
        assert_eq!(c.live(), 0);
    }

    #[test]
    fn console_output_hands_over_down_the_chain() {
        let kernel = KernelConfig {
            tick_period_us: 200,
            tick_work: 0,
            ..KernelConfig::default()
        };
        let img = build_image(&kernel, &hello_source("abcdefghij", 2)).unwrap();
        let hv = HvConfig {
            epoch_len: 256,
            ..HvConfig::default()
        };
        let mut c = TChain::build(&img, 2, CostModel::functional(), hv, ProtocolVariant::Old);
        let r = c.run(&[2, 4], 100_000);
        assert!(matches!(r.end, ChainEnd::Exit { code: 42 }), "{:?}", r.end);
        // Emitting replica indices never decrease (one-way promotions).
        let emitters: Vec<usize> = r.console.iter().map(|&(i, _)| i).collect();
        assert!(emitters.windows(2).all(|w| w[0] <= w[1]), "{emitters:?}");
        // Bytes remain an in-order subsequence of the message.
        let bytes: Vec<u8> = r.console.iter().map(|&(_, b)| b).collect();
        let mut it = b"abcdefghij".iter();
        assert!(bytes.iter().all(|b| it.any(|m| m == b)), "{bytes:?}");
    }

    #[test]
    fn divergence_is_detected_across_the_chain() {
        let hv = HvConfig {
            epoch_len: 1024,
            tlb_managed: false,
            tlb_slots: 4,
            ..HvConfig::default()
        };
        let mut c = TChain::build(
            &image(),
            2,
            CostModel::functional(),
            hv,
            ProtocolVariant::Old,
        );
        let r = c.run(&[], 100_000);
        assert!(
            matches!(r.end, ChainEnd::Diverged { .. }),
            "unmanaged random TLBs must diverge somewhere in the chain: {:?}",
            r.end
        );
    }

    #[test]
    #[should_panic(expected = "t >= 1")]
    fn zero_backups_rejected() {
        let hv = HvConfig::default();
        let _ = TChain::build(
            &image(),
            0,
            CostModel::functional(),
            hv,
            ProtocolVariant::Old,
        );
    }
}
