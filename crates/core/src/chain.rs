//! The `t`-fault-tolerant generalization.
//!
//! §2 of the paper: "Our protocols are for a single backup, so we
//! implement a 1-fault-tolerant virtual machine; generalization to
//! t-fault-tolerant virtual machines is straightforward." This module
//! implements that generalization as an epoch-synchronous replica chain:
//! one primary plus `t` ordered backups, all executing identical
//! instruction streams; when the current primary failstops, the next
//! live replica in the chain promotes itself, up to `t` times.
//!
//! Compared to [`crate::system::FtSystem`] (which models the full
//! two-processor prototype with real link timing, the shared disk, and
//! the asynchronous DES), the chain is a *protocol-level* demonstrator:
//! replicas advance in lockstep rounds of one epoch, the coordination
//! messages are abstracted to their information content, and the
//! environment is the console plus timer. That is exactly the part the
//! paper calls straightforward — and this module proves it by running
//! `t + 1` replicas through arbitrary failure schedules and checking
//! that states stay identical and the survivor finishes the workload
//! with the reference result.

use hvft_hypervisor::cost::CostModel;
use hvft_hypervisor::hvguest::{HvConfig, HvEvent, HvGuest};
use hvft_isa::program::Program;
use hvft_machine::mem::IO_BASE;
use hvft_machine::trap::irq;
use hvft_sim::time::SimDuration;

/// Why a chain run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainEnd {
    /// The workload exited with this code on the acting primary.
    Exit {
        /// Guest exit code.
        code: u32,
    },
    /// More processors failed than the chain tolerates (> t).
    Exhausted,
    /// Replicas diverged at an epoch boundary (protocol violation).
    Diverged {
        /// The epoch at whose boundary hashes differed.
        epoch: u64,
    },
    /// The epoch budget ran out (guard).
    EpochLimit,
}

/// Result of a chain run.
#[derive(Clone, Debug)]
pub struct ChainResult {
    /// Outcome.
    pub end: ChainEnd,
    /// Epochs executed.
    pub epochs: u64,
    /// Number of primaries that failstopped during the run.
    pub failures: usize,
    /// Console bytes, tagged with the replica that (as acting primary)
    /// emitted them.
    pub console: Vec<(usize, u8)>,
}

/// A `t`-fault-tolerant virtual machine: primary + `t` ordered backups.
pub struct TChain {
    replicas: Vec<Option<HvGuest>>,
    /// Index of the acting primary (first live replica).
    head: usize,
    epoch: u64,
    console: Vec<(usize, u8)>,
}

impl TChain {
    /// Boots `t + 1` replicas of `image`. Each replica's machine gets a
    /// different TLB seed — as in the two-replica system, hardware
    /// non-determinism must be survivable.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` (a chain needs at least one backup).
    pub fn new(image: &Program, t: usize, cost: CostModel, hv: HvConfig) -> Self {
        assert!(t >= 1, "a t-fault-tolerant chain needs t >= 1");
        let replicas = (0..=t)
            .map(|i| {
                let mut cfg = hv;
                cfg.tlb_seed = hv.tlb_seed.wrapping_add(1 + i as u64);
                Some(HvGuest::new(image, cost, cfg))
            })
            .collect();
        TChain {
            replicas,
            head: 0,
            epoch: 0,
            console: Vec::new(),
        }
    }

    /// Number of live replicas.
    pub fn live(&self) -> usize {
        self.replicas.iter().flatten().count()
    }

    /// Failstops the acting primary; the next live replica promotes.
    /// Returns `false` if no replica is left to promote.
    pub fn fail_primary(&mut self) -> bool {
        self.replicas[self.head] = None;
        match self.replicas.iter().position(Option::is_some) {
            Some(next) => {
                self.head = next;
                true
            }
            None => false,
        }
    }

    /// Runs every live replica through one epoch (or to workload exit).
    ///
    /// Returns `Some(end)` when the run is over.
    fn step_epoch(&mut self, budget: SimDuration) -> Option<ChainEnd> {
        let mut exit_code: Option<u32> = None;
        let mut hashes: Vec<(usize, u64)> = Vec::new();
        let head = self.head;
        for i in 0..self.replicas.len() {
            let is_primary = i == head;
            let Some(guest) = self.replicas[i].as_mut() else {
                continue;
            };
            loop {
                match guest.run(budget) {
                    HvEvent::EpochEnd => {
                        hashes.push((i, guest.state_hash()));
                        // Interval-timer interrupts are generated from the
                        // (shared, deterministic) virtual clock — the
                        // generalization of the [Tme] synchronization.
                        let retired = guest.cpu.retired();
                        if guest.vclock.take_expired_timer(retired) {
                            guest.assert_irq(irq::TIMER);
                        }
                        guest.begin_epoch();
                        break;
                    }
                    HvEvent::MmioRead { paddr } => {
                        let v = match paddr.wrapping_sub(IO_BASE) {
                            hvft_devices::mmio::CONSOLE_REG_STATUS => 1,
                            _ => 0,
                        };
                        guest.finish_mmio_read(v);
                    }
                    HvEvent::MmioWrite { paddr, value } => {
                        // Output suppression at backups, exactly as in the
                        // two-replica system.
                        if is_primary
                            && paddr.wrapping_sub(IO_BASE) == hvft_devices::mmio::CONSOLE_REG_TX
                        {
                            self.console.push((i, value as u8));
                        }
                        guest.finish_mmio_write();
                    }
                    HvEvent::Diag { value, code } => {
                        if code == hvft_guest::layout::diag::EXIT {
                            if is_primary {
                                exit_code = Some(value);
                            }
                            break;
                        }
                    }
                    HvEvent::Halted => break,
                    HvEvent::BudgetExhausted => return Some(ChainEnd::EpochLimit),
                    HvEvent::Idle => return Some(ChainEnd::EpochLimit),
                }
            }
        }
        self.epoch += 1;
        // Lockstep check across every live replica.
        if let Some(&(_, first)) = hashes.first() {
            if hashes.iter().any(|&(_, h)| h != first) {
                return Some(ChainEnd::Diverged { epoch: self.epoch });
            }
        }
        exit_code.map(|code| ChainEnd::Exit { code })
    }

    /// Runs to completion, failstopping the acting primary at each epoch
    /// number listed in `failures_at` (ascending).
    pub fn run(&mut self, failures_at: &[u64], max_epochs: u64) -> ChainResult {
        let budget = SimDuration::from_secs(10);
        let mut failures = 0;
        let mut fail_iter = failures_at.iter().peekable();
        loop {
            if self.epoch >= max_epochs {
                return self.result(ChainEnd::EpochLimit, failures);
            }
            if let Some(&&at) = fail_iter.peek() {
                if self.epoch >= at {
                    fail_iter.next();
                    failures += 1;
                    if !self.fail_primary() {
                        return self.result(ChainEnd::Exhausted, failures);
                    }
                }
            }
            if let Some(end) = self.step_epoch(budget) {
                return self.result(end, failures);
            }
        }
    }

    fn result(&self, end: ChainEnd, failures: usize) -> ChainResult {
        ChainResult {
            end,
            epochs: self.epoch,
            failures,
            console: self.console.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_guest::{build_image, dhrystone_source, hello_source, KernelConfig};

    fn image() -> Program {
        let kernel = KernelConfig {
            tick_period_us: 1000,
            tick_work: 2,
            ..KernelConfig::default()
        };
        build_image(&kernel, &dhrystone_source(1_500, 6)).unwrap()
    }

    fn chain(t: usize) -> TChain {
        let hv = HvConfig {
            epoch_len: 1024,
            ..HvConfig::default()
        };
        TChain::new(&image(), t, CostModel::functional(), hv)
    }

    fn reference_code() -> u32 {
        let mut c = chain(1);
        match c.run(&[], 100_000).end {
            ChainEnd::Exit { code } => code,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failure_free_chain_stays_in_lockstep() {
        let mut c = chain(3);
        let r = c.run(&[], 100_000);
        assert!(matches!(r.end, ChainEnd::Exit { .. }), "{:?}", r.end);
        assert_eq!(c.live(), 4);
        assert_eq!(r.failures, 0);
    }

    #[test]
    fn tolerates_exactly_t_failures() {
        let code = reference_code();
        for t in 1..=3usize {
            let mut c = chain(t);
            // Fail one primary every 3 epochs, t times.
            let fails: Vec<u64> = (1..=t as u64).map(|k| k * 3).collect();
            let r = c.run(&fails, 100_000);
            match r.end {
                ChainEnd::Exit { code: got } => {
                    assert_eq!(
                        got, code,
                        "t={t}: survivor must produce the reference result"
                    )
                }
                other => panic!("t={t}: {other:?}"),
            }
            assert_eq!(r.failures, t);
            assert_eq!(c.live(), 1, "t={t}: exactly the survivor remains");
        }
    }

    #[test]
    fn t_plus_one_failures_exhaust_the_chain() {
        let mut c = chain(2);
        let r = c.run(&[1, 2, 3], 100_000);
        assert_eq!(r.end, ChainEnd::Exhausted);
        assert_eq!(r.failures, 3);
        assert_eq!(c.live(), 0);
    }

    #[test]
    fn console_output_hands_over_down_the_chain() {
        let kernel = KernelConfig {
            tick_period_us: 200,
            tick_work: 0,
            ..KernelConfig::default()
        };
        let img = build_image(&kernel, &hello_source("abcdefghij", 2)).unwrap();
        let hv = HvConfig {
            epoch_len: 256,
            ..HvConfig::default()
        };
        let mut c = TChain::new(&img, 2, CostModel::functional(), hv);
        let r = c.run(&[2, 4], 100_000);
        assert!(matches!(r.end, ChainEnd::Exit { code: 42 }), "{:?}", r.end);
        // Emitting replica indices never decrease (one-way promotions).
        let emitters: Vec<usize> = r.console.iter().map(|&(i, _)| i).collect();
        assert!(emitters.windows(2).all(|w| w[0] <= w[1]), "{emitters:?}");
        // Bytes remain an in-order subsequence of the message.
        let bytes: Vec<u8> = r.console.iter().map(|&(_, b)| b).collect();
        let mut it = b"abcdefghij".iter();
        assert!(bytes.iter().all(|b| it.any(|m| m == b)), "{bytes:?}");
    }

    #[test]
    fn divergence_is_detected_across_the_chain() {
        let hv = HvConfig {
            epoch_len: 1024,
            tlb_managed: false,
            tlb_slots: 4,
            ..HvConfig::default()
        };
        let mut c = TChain::new(&image(), 2, CostModel::functional(), hv);
        let r = c.run(&[], 100_000);
        assert!(
            matches!(r.end, ChainEnd::Diverged { .. }),
            "unmanaged random TLBs must diverge somewhere in the chain: {:?}",
            r.end
        );
    }

    #[test]
    #[should_panic(expected = "t >= 1")]
    fn zero_backups_rejected() {
        let hv = HvConfig::default();
        let _ = TChain::new(&image(), 0, CostModel::functional(), hv);
    }
}
