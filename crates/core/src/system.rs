//! The t-fault-tolerant virtual machine as a discrete-event system:
//! `t + 1` hypervised hosts, the shared environment, and the protocol
//! engines of [`crate::protocol`].
//!
//! [`FtSystem`] is a *driver*: the P1–P7 / §4.3 rule logic lives
//! entirely in [`crate::protocol::ReplicaEngine`], and this module owns
//! what the rules are abstract over — the hosts' simulated clocks, the
//! coordination [`Channel`]s, the shared disk and console, the timeout
//! failure detectors, and the conservative co-simulation loop.
//!
//! Each host advances its own simulated clock, and a host may never run
//! past the earliest event that could affect it (the link's minimum
//! latency provides the lookahead). The result is a bit-deterministic
//! simulation of the whole prototype of §3 — HP 9000/720-class
//! machines, a shared disk, a console, and a coordination LAN — now
//! generalized from the paper's single backup to an ordered chain of
//! `t ≥ 1` backups with cascading failover:
//!
//! - the acting primary broadcasts `[E, Int]`, `[Tme_p]` and `[end, E]`
//!   to every live backup and counts every backup's acknowledgments;
//! - every backup runs its own failure detector, with a timeout of
//!   `k × base` for rank `k` among the live replicas, so the
//!   next-in-line backup suspects first; a deeper backup that suspects
//!   out of turn re-arms and defers to the chain order, so exactly one
//!   replica promotes even when detectors race;
//! - on promotion with survivors, the new primary completes the
//!   failover epoch for the whole chain (see
//!   [`crate::protocol::ReplicaEngine::promote_at_boundary`]), and the
//!   survivors' detectors are re-armed against the new primary.

use crate::config::{FailureSpec, FtConfig};
use crate::lockstep::LockstepChecker;
use crate::messages::{DiskCompletion, ForwardedInterrupt, Message, ReplicaState};
use crate::observer::{DropReason, Observer, RunStats};
use crate::protocol::{apply_to_guest, Effect, IoGate, ReplicaEngine};
use hvft_devices::console::Console;
use hvft_devices::disk::{Disk, DiskCommand, DiskLogEntry, DiskStatus, BLOCK_SIZE};
use hvft_devices::mmio;
use hvft_hypervisor::hvguest::{HvEvent, HvGuest, HvStats};
use hvft_isa::program::Program;
use hvft_machine::mem::IO_BASE;
use hvft_machine::trap::irq;
use hvft_net::channel::Channel;
use hvft_net::detector::FailureDetector;
use hvft_net::lan::Lan;
use hvft_net::reliable::{Frame, RecvWindow, SendWindow};
use hvft_sim::sched::{self, Agenda, Component};
use hvft_sim::time::{SimDuration, SimTime};
use hvft_sim::trace::{TraceCategory, Tracer};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// What the coordination network actually carries: protocol messages
/// wrapped in the reliable layer's envelope. Runs without
/// retransmission ([`crate::config::FtConfig::retransmit`] `None`) send
/// unsequenced `Data` frames and never generate `Ack` frames, so the
/// wire timing is identical to raw [`Message`] channels.
pub type WireFrame = Frame<Message>;

/// How a host's run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunEnd {
    /// The workload called `SYS_EXIT`.
    Exit {
        /// The code (checksum) passed by the guest.
        code: u32,
    },
    /// The guest halted without an exit diagnostic (kernel fatal path).
    Fatal {
        /// Fatal code from the kernel, if any was diagnosed.
        code: Option<u32>,
    },
    /// The per-guest instruction limit tripped.
    InsnLimit,
}

/// An I/O the revised protocol is holding until acknowledgments
/// complete (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PendingIo {
    DiskGo { cmd_value: u32 },
    ConsoleTx { byte: u8 },
}

/// Host lifecycle, orthogonal to the engine's protocol phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Life {
    /// Participating in the protocol.
    Active,
    /// Finished as acting primary: the run is over.
    Done(RunEnd),
    /// The guest finished the workload while still an unpromoted backup
    /// (its exit was suppressed); it waits to learn the primary's fate.
    BackupDone(RunEnd),
    /// Failstopped.
    Dead,
    /// Repaired and back on the LAN, awaiting a state transfer from
    /// the acting primary. A rejoining host receives frames (so the
    /// transfer and its link-level acks flow) but runs no guest
    /// instructions and is not promotable until reintegration
    /// completes.
    Rejoining,
}

/// An operation issued by the guest and not yet completed+delivered.
#[derive(Clone, Debug)]
struct InflightIo {
    cmd: DiskCommand,
    dma_addr: u32,
    /// Snapshot of the buffer for writes (captured at GO).
    write_data: Option<Vec<u8>>,
    issued_at: SimTime,
}

/// Holds a host's guest, allowing it to be temporarily detached so a
/// worker thread can execute a planned slice off-thread (the parallel
/// cluster executor). Everything in [`FtSystem`] that can run between a
/// slice's planning and its commit — `next_action_time`, the event
/// agenda — must not touch the guest; dereferencing an empty slot
/// panics, which is the assertion of that invariant.
struct GuestSlot(Option<HvGuest>);

impl GuestSlot {
    fn detach(&mut self) -> HvGuest {
        self.0.take().expect("guest already detached")
    }

    fn attach(&mut self, guest: HvGuest) {
        debug_assert!(self.0.is_none(), "guest already attached");
        self.0 = Some(guest);
    }
}

impl Deref for GuestSlot {
    type Target = HvGuest;
    fn deref(&self) -> &HvGuest {
        self.0
            .as_ref()
            .expect("guest is detached to a slice worker")
    }
}

impl DerefMut for GuestSlot {
    fn deref_mut(&mut self) -> &mut HvGuest {
        self.0
            .as_mut()
            .expect("guest is detached to a slice worker")
    }
}

/// One replica's host: guest + clock + device shadows + its engine.
struct Host {
    guest: GuestSlot,
    engine: ReplicaEngine,
    now: SimTime,
    /// `guest.elapsed()` already folded into `now`.
    synced_elapsed: SimDuration,
    life: Life,
    promoted: bool,
    /// §4.3 I/O held until the engine releases it.
    held_io: Option<PendingIo>,
    // Guest-visible device shadows (updated only at delivery points so
    // all replicas read identical values).
    reg_block: u32,
    reg_addr: u32,
    disk_status_reg: u32,
    inflight: Option<InflightIo>,
    // Results.
    diags: Vec<(u32, u32)>,
    op_latencies: Vec<SimDuration>,
}

impl Host {
    fn new(guest: HvGuest, engine: ReplicaEngine) -> Self {
        Host {
            guest: GuestSlot(Some(guest)),
            engine,
            now: SimTime::ZERO,
            synced_elapsed: SimDuration::ZERO,
            life: Life::Active,
            promoted: false,
            held_io: None,
            reg_block: 0,
            reg_addr: 0,
            disk_status_reg: mmio::disk_status::IDLE,
            inflight: None,
            diags: Vec::new(),
            op_latencies: Vec::new(),
        }
    }

    /// Folds freshly accumulated guest time into the host clock.
    fn sync_clock(&mut self) {
        let e = self.guest.elapsed();
        self.now += e - self.synced_elapsed;
        self.synced_elapsed = e;
    }

    /// Charges hypervisor work and advances the host clock.
    fn charge(&mut self, d: SimDuration) {
        self.guest.charge(d);
        self.sync_clock();
    }

    fn runnable(&self) -> bool {
        self.life == Life::Active && self.engine.is_running()
    }

    /// Whether rule P6 may promote this host right now.
    fn waiting_as_backup(&self) -> bool {
        match self.life {
            Life::BackupDone(_) => true,
            Life::Active => !self.engine.is_primary() && self.engine.is_waiting_backup(),
            _ => false,
        }
    }

    fn alive(&self) -> bool {
        matches!(
            self.life,
            Life::Active | Life::BackupDone(_) | Life::Rejoining
        )
    }

    /// Whether this host can serve in the promotion chain right now: a
    /// rejoining replica is alive (it receives frames) but has no
    /// restored state to promote from.
    fn promotable(&self) -> bool {
        matches!(self.life, Life::Active | Life::BackupDone(_))
    }
}

/// Information about a completed failover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverInfo {
    /// When the backup promoted itself.
    pub at: SimTime,
    /// The failover epoch (rule P6's `E`).
    pub epoch: u64,
    /// Whether rule P7 synthesized an uncertain interrupt.
    pub uncertain_synthesized: bool,
}

/// Information about a completed backup reintegration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReintegrationInfo {
    /// When the repaired replica became a live backup again — the
    /// instant `t`-fault coverage was restored.
    pub at: SimTime,
    /// The rejoining replica's chain position.
    pub replica: usize,
    /// The epoch boundary whose snapshot it restored.
    pub epoch: u64,
    /// Modelled bytes of the state transfer.
    pub bytes: u64,
}

/// One whole-system checkpoint, captured at the acting primary's first
/// epoch boundary at or past the requested barrier instant — the same
/// quiescent point, and the same canonical [`ReplicaState`], that a
/// reintegration transfer ships (see [`FtSystem::schedule_checkpoint`]).
/// Capture is pure — no wire traffic, no engine interaction — so a
/// checkpointed run is bit-identical to an uncheckpointed one, and the
/// checkpoint itself is identical whichever
/// [`crate::cluster::Parallelism`] mode produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemCheckpoint {
    /// The requested barrier instant.
    pub requested: SimTime,
    /// When the capture actually happened: the acting primary's first
    /// epoch boundary at or past `requested`.
    pub at: SimTime,
    /// The epoch whose boundary was captured.
    pub epoch: u64,
    /// The live guest's VM-state hash at capture. Restoring
    /// `state.guest` into any [`HvGuest`] reproduces exactly this hash
    /// — the restore-exactness check for consumers.
    pub state_hash: u64,
    /// The canonical state, identical in kind to a reintegration
    /// transfer: guest snapshot plus driver-level device shadows.
    pub state: ReplicaState,
}

/// The outcome of a system run.
#[derive(Clone, Debug)]
pub struct FtRunResult {
    /// How the acting primary's workload ended.
    pub outcome: RunEnd,
    /// Completion time on the acting primary's clock — the `N′` of the
    /// paper's normalized performance.
    pub completion_time: SimDuration,
    /// Every failover of the run, in promotion order (cascading
    /// failures produce one entry per promotion).
    pub failovers: Vec<FailoverInfo>,
    /// Epoch-boundary state-hash comparison results.
    pub lockstep: LockstepChecker,
    /// Bytes the environment's console received, in order.
    pub console_output: Vec<u8>,
    /// Hosts that wrote to the console, in order of first write.
    pub console_hosts: Vec<u8>,
    /// The disk's environment-visible operation log.
    pub disk_log: Vec<DiskLogEntry>,
    /// Acting primary's hypervisor statistics.
    pub primary_stats: HvStats,
    /// Hypervisor statistics of every replica, in chain order.
    pub replica_stats: Vec<HvStats>,
    /// Guest-visible latency of each completed disk operation at the
    /// acting primary (GO to interrupt delivery).
    pub op_latencies: Vec<SimDuration>,
    /// Driver retries recorded by the guest kernel (uncertain outcomes).
    pub guest_retries: u32,
    /// Frames sent by each replica, in chain order (includes
    /// retransmissions and link-level acks when the reliable layer is
    /// enabled).
    pub messages_per_replica: Vec<u64>,
    /// Data frames re-sent by the ack/retransmission layer (zero when
    /// [`crate::config::FtConfig::retransmit`] is `None`).
    pub frames_retransmitted: u64,
    /// Duplicate or out-of-order frames suppressed by receivers (zero
    /// without the reliable layer).
    pub frames_suppressed: u64,
    /// Every completed backup reintegration, in completion order.
    pub reintegrations: Vec<ReintegrationInfo>,
    /// Modelled bytes of completed reintegration state transfers.
    pub state_transfer_bytes: u64,
}

/// The coordination medium: either a private full mesh of
/// point-to-point channels (the paper's dedicated coordination LAN) or
/// a window onto a shared [`Lan`] carrying several fault-tolerant
/// systems' traffic at once (the sharded [`crate::cluster::FtCluster`]).
///
/// Replica indices are system-local; the `Shared` variant maps replica
/// `i` to LAN node `base + i`.
enum NetBackend {
    Mesh(BTreeMap<(usize, usize), Channel<WireFrame>>),
    Shared {
        lan: Rc<RefCell<Lan<WireFrame>>>,
        base: usize,
        n: usize,
    },
}

impl NetBackend {
    /// Offers a frame for transmission; returns the instant its
    /// serialization onto the medium completes (known to the sender's
    /// NIC whether or not the frame is then lost), which anchors the
    /// retransmit timer, plus whether the frame actually entered the
    /// wire (false: loss injection or a severed link consumed it).
    fn send(
        &mut self,
        now: SimTime,
        from: usize,
        to: usize,
        bytes: usize,
        frame: WireFrame,
    ) -> (SimTime, bool) {
        match self {
            NetBackend::Mesh(chans) => {
                let ch = chans.get_mut(&(from, to)).expect("mesh channel");
                let accepted = ch.send(now, bytes, frame).is_some();
                (ch.busy_until(), accepted)
            }
            NetBackend::Shared { lan, base, .. } => {
                let mut lan = lan.borrow_mut();
                let accepted = lan
                    .send(now, *base + from, *base + to, bytes, frame)
                    .is_some();
                (lan.busy_until(), accepted)
            }
        }
    }

    /// Earliest pending delivery addressed to this system.
    fn next_delivery(&self) -> Option<SimTime> {
        match self {
            NetBackend::Mesh(chans) => chans.values().filter_map(|ch| ch.next_delivery()).min(),
            NetBackend::Shared { lan, base, n } => {
                lan.borrow().next_delivery_within(*base, *base + *n)
            }
        }
    }

    /// Pops the earliest delivery due at `t`; ties break in
    /// `(from, to)` order for determinism.
    fn pop_due(&mut self, t: SimTime) -> Option<(usize, usize, WireFrame)> {
        match self {
            NetBackend::Mesh(chans) => {
                let pair = chans
                    .iter()
                    .find(|(_, ch)| ch.next_delivery() == Some(t))
                    .map(|(&pair, _)| pair)?;
                let frame = chans
                    .get_mut(&pair)
                    .unwrap()
                    .pop_ready(t)
                    .expect("due message");
                Some((pair.0, pair.1, frame))
            }
            NetBackend::Shared { lan, base, n } => {
                let (from, to, frame) = lan.borrow_mut().pop_ready_within(*base, *base + *n, t)?;
                Some((from - *base, to - *base, frame))
            }
        }
    }

    /// Severs every link touching `victim` (its processor failstopped).
    fn sever_all_of(&mut self, victim: usize) {
        match self {
            NetBackend::Mesh(chans) => {
                for (&(from, to), ch) in chans.iter_mut() {
                    if from == victim || to == victim {
                        ch.sever();
                    }
                }
            }
            NetBackend::Shared { lan, base, .. } => lan.borrow_mut().sever_node(*base + victim),
        }
    }

    /// Reopens every link touching `victim` — the physical repair that
    /// precedes reintegration. Frames offered while the links were down
    /// stay lost.
    fn unsever_all_of(&mut self, victim: usize) {
        match self {
            NetBackend::Mesh(chans) => {
                for (&(from, to), ch) in chans.iter_mut() {
                    if from == victim || to == victim {
                        ch.unsever();
                    }
                }
            }
            NetBackend::Shared { lan, base, .. } => lan.borrow_mut().unsever_node(*base + victim),
        }
    }

    fn is_severed(&self, from: usize, to: usize) -> bool {
        match self {
            NetBackend::Mesh(chans) => chans.get(&(from, to)).is_none_or(|ch| ch.is_severed()),
            NetBackend::Shared { lan, base, .. } => {
                lan.borrow().is_severed(*base + from, *base + to)
            }
        }
    }

    /// The instant the medium carrying `from → to` finishes serializing
    /// everything accepted so far — the sender's NIC-queue horizon. For
    /// the private mesh that is the directed channel's own clock; on a
    /// shared LAN the whole medium is one queue.
    fn busy_until_of(&self, from: usize, to: usize) -> SimTime {
        match self {
            NetBackend::Mesh(chans) => chans
                .get(&(from, to))
                .map(|ch| ch.busy_until())
                .unwrap_or(SimTime::ZERO),
            NetBackend::Shared { lan, .. } => lan.borrow().busy_until(),
        }
    }
}

/// Per-directed-link ack/retransmission state (present only when
/// [`crate::config::FtConfig::retransmit`] is set).
struct RelNet {
    send: BTreeMap<(usize, usize), SendWindow<Message>>,
    recv: BTreeMap<(usize, usize), RecvWindow>,
}

impl RelNet {
    fn new(n: usize, rto: SimDuration) -> Self {
        let mut send = BTreeMap::new();
        let mut recv = BTreeMap::new();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    send.insert((from, to), SendWindow::new(rto));
                    recv.insert((from, to), RecvWindow::new());
                }
            }
        }
        RelNet { send, recv }
    }
}

/// One pending event source of the DES, tagged so one [`Agenda`] pick
/// answers both "when is the next event" and "which event fires".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventTag {
    /// The failure schedule kills the then-acting primary.
    PrimaryFailure,
    /// The replica failure schedule kills a specific replica.
    ReplicaFailure,
    /// The disk controller completes host `i`'s operation.
    DiskCompletion(usize),
    /// The coordination medium delivers its earliest due frame.
    Delivery,
    /// The `from → to` retransmit timer fires.
    Retransmit(usize, usize),
    /// A protocol-stalled acting primary beacons liveness.
    Heartbeat,
    /// Backup `b`'s failure detector reaches its deadline.
    Detector(usize),
    /// The rejoin schedule repairs a failstopped replica.
    Rejoin,
}

/// One planned guest slice: host `host` may run for `budget` without
/// anything external affecting it (the conservative horizon computed
/// from the event agenda and every peer's clock plus the link's
/// minimum latency).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct SlicePlan {
    /// Which host's guest runs.
    pub host: usize,
    /// The conservative slice budget.
    pub budget: SimDuration,
}

/// The system's next scheduling decision (see [`FtSystem::plan`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum StepPlan {
    /// The run is over; stepping yields the result.
    Finished,
    /// Process the earliest pending event inline.
    Event,
    /// A *wave* of independent guest slices — one per replica whose
    /// conservative horizon permits progress, planned from one state
    /// snapshot. Slices are the only expensive action and depend only
    /// on replica-local CPU/memory state (replicas couple solely
    /// through protocol messages, which commit on the coordinator), so
    /// a wave's slices may execute concurrently on worker threads; the
    /// commits land in vec order (ascending start clock, then host
    /// index), which both execution modes share — the bit-identity
    /// invariant.
    Slices(Vec<SlicePlan>),
}

/// The complete §3 prototype, generalized to `t` backups: `t + 1`
/// processors, shared disk, console, coordination LAN.
pub struct FtSystem {
    hosts: Vec<Host>,
    /// The coordination medium carrying `[E, Int]`, `[Tme]`, `[end]`
    /// and acknowledgments between the replicas.
    net: NetBackend,
    /// Link-level ack/retransmission state, when enabled.
    rel: Option<RelNet>,
    disk: Disk,
    console: Console,
    /// Per-backup failure detector (`None` for the acting primary and
    /// the dead).
    detectors: Vec<Option<FailureDetector>>,
    cfg: FtConfig,
    /// Pending disk completion per host.
    disk_done: Vec<Option<SimTime>>,
    /// Per-directed-link instant of the last outbound frame (data, ack
    /// or heartbeat). A protocol-stalled acting primary heartbeats a
    /// backup when *that backup's* link has been quiet for a fraction
    /// of the detection timeout — per-link, because a primary busy
    /// retransmitting to one lagging backup must not starve the
    /// caught-up one of liveness evidence.
    last_outbound: BTreeMap<(usize, usize), SimTime>,
    /// Failure schedule: each entry failstops the then-acting primary.
    fail_schedule: Vec<SimTime>,
    /// Failure schedule for specific replicas (backup failstops),
    /// sorted by time.
    replica_fail_schedule: Vec<(SimTime, usize)>,
    /// Rejoin schedule: each entry repairs a failstopped replica at a
    /// time, putting it back on the LAN to await a state transfer.
    rejoin_schedule: Vec<(SimTime, usize)>,
    /// Repaired replicas on the LAN awaiting a transfer, in repair
    /// order. The acting primary serves the head of this queue at its
    /// next epoch boundary (one transfer at a time).
    pending_rejoins: Vec<usize>,
    /// An in-progress state transfer: `(victim, snapshot epoch)`.
    /// Aborted (and later restarted by the new primary) if the sender
    /// failstops mid-transfer.
    transfer: Option<(usize, u64)>,
    /// Pending checkpoint barriers, sorted by time; each is served at
    /// the acting primary's first epoch boundary at or past it.
    checkpoint_schedule: Vec<SimTime>,
    /// Completed checkpoints, in capture order.
    checkpoints: Vec<SystemCheckpoint>,
    /// Completed reintegrations, in completion order.
    reintegrations: Vec<ReintegrationInfo>,
    failovers: Vec<FailoverInfo>,
    lockstep: LockstepChecker,
    /// Index of the host currently acting as primary.
    acting_primary: usize,
    tracer: Tracer,
    /// Run observers (see [`crate::observer::Observer`]). Every hook
    /// site lives on a driver event path (never the interpreter's
    /// per-instruction fast path) behind an is-empty check, so an
    /// unobserved run pays nothing.
    observers: Vec<Box<dyn Observer>>,
    /// The default run-long statistics observer, always installed: the
    /// run report's wire counters come from here, fed by the same hook
    /// sites user observers see (see [`RunStats`]).
    stats: RunStats,
}

impl FtSystem {
    /// Builds the system: all `1 + cfg.backups` replicas boot the
    /// identical image in the identical state, as §2.1 requires. The
    /// coordination medium is a private full mesh of point-to-point
    /// channels over `cfg.link`, with `cfg.loss_prob` loss injection
    /// and, when `cfg.retransmit` is set, the link-level
    /// ack/retransmission layer.
    ///
    /// This is the validated construction path used by the scenario
    /// layer — [`crate::scenario::Scenario::builder`] is the public
    /// front door, and validates configurations (returning
    /// [`crate::scenario::ConfigError`] instead of panicking) before
    /// reaching this.
    pub(crate) fn from_config(image: &Program, cfg: FtConfig) -> Self {
        let n = 1 + cfg.backups;
        let mut chans = BTreeMap::new();
        let mut pair = 0u64;
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let mut ch = Channel::new(cfg.link, cfg.seed ^ (0xA + pair));
                    ch.set_loss_probability(cfg.loss_prob);
                    chans.insert((from, to), ch);
                    pair += 1;
                }
            }
        }
        Self::build(image, cfg, NetBackend::Mesh(chans))
    }

    /// Builds the system as one shard of a multi-system cluster: the
    /// coordination medium is a window onto `lan`, whose nodes
    /// `base .. base + 1 + cfg.backups` must already be registered for
    /// this system (see [`crate::cluster::FtCluster`]). Loss injection
    /// on the shared medium is the cluster's job; `cfg.loss_prob` is
    /// applied to this system's links as a convenience.
    pub(crate) fn new_on_lan(
        image: &Program,
        cfg: FtConfig,
        lan: Rc<RefCell<Lan<WireFrame>>>,
        base: usize,
    ) -> Self {
        let n = 1 + cfg.backups;
        {
            let mut l = lan.borrow_mut();
            assert!(
                base + n <= l.nodes(),
                "LAN nodes {base}..{} not registered",
                base + n
            );
            if cfg.loss_prob > 0.0 {
                for from in 0..n {
                    for to in 0..n {
                        if from != to {
                            l.set_loss_probability(base + from, base + to, cfg.loss_prob);
                        }
                    }
                }
            }
        }
        Self::build(image, cfg, NetBackend::Shared { lan, base, n })
    }

    /// Validates that a configuration can survive message loss:
    /// retransmission must be enabled (a lost `[Tme]` or `[end]`
    /// otherwise stalls its epoch boundary forever) and detection must
    /// dominate recovery. The paper assumes *accurate* failure
    /// detection; under loss, a stalled primary's retransmissions and
    /// heartbeats arrive at most `4 × rto` apart (bounded-burst
    /// resends, backoff capped at 2²), so demanding
    /// `detector_timeout ≥ 32 × rto` makes a false suspicion require
    /// ≥ 8 consecutive drops on one link.
    ///
    /// Called for `cfg.loss_prob > 0` at construction and again by
    /// [`crate::cluster::FtCluster::set_loss_probability_all`], which
    /// can turn loss on after construction.
    pub(crate) fn assert_loss_tolerant(cfg: &FtConfig) {
        let Some(rto) = cfg.retransmit else {
            panic!(
                "message loss without retransmission stalls the first dropped \
                 boundary (enable FtConfig::retransmit)"
            );
        };
        assert!(
            cfg.detector_timeout >= rto * 32,
            "detector_timeout ({}) must be at least 32 × the retransmission \
             timeout ({}) or unlucky loss bursts will promote a backup under \
             a live primary",
            cfg.detector_timeout,
            rto,
        );
    }

    fn build(image: &Program, cfg: FtConfig, net: NetBackend) -> Self {
        assert!(cfg.backups >= 1, "a fault-tolerant system needs a backup");
        if cfg.loss_prob > 0.0 {
            Self::assert_loss_tolerant(&cfg);
        }
        let n = 1 + cfg.backups;
        let mut hosts = Vec::with_capacity(n);
        for i in 0..n {
            let mut hv = cfg.hv;
            // Deliberately different machine-level TLB seeds: the
            // paper's point is that replica coordination must survive
            // hardware non-determinism invisible to the VM state.
            hv.tlb_seed = cfg.seed.wrapping_add(101 * (i as u64 + 1));
            let guest = HvGuest::new(image, cfg.cost, hv);
            let engine = if i == 0 {
                ReplicaEngine::new_primary(0, (1..n).collect(), cfg.protocol)
            } else {
                ReplicaEngine::new_backup(i, 0, cfg.protocol)
            };
            hosts.push(Host::new(guest, engine));
        }
        let mut detectors = vec![None; n];
        for (rank, slot) in detectors.iter_mut().enumerate().skip(1) {
            // Rank-scaled timeouts: the next-in-line backup suspects
            // first; deeper backups wait out the promotion hand-over.
            let mut d = FailureDetector::new(cfg.detector_timeout * rank as u64);
            d.heard(SimTime::ZERO);
            *slot = Some(d);
        }
        let mut disk = Disk::new(cfg.disk_blocks, cfg.seed);
        disk.set_fault_probability(cfg.disk_fault_prob);
        let fail_schedule = match cfg.failure {
            FailureSpec::None => Vec::new(),
            FailureSpec::At(t) => vec![t],
        };
        FtSystem {
            hosts,
            net,
            rel: cfg.retransmit.map(|rto| RelNet::new(n, rto)),
            disk,
            console: Console::new(),
            detectors,
            cfg,
            last_outbound: (0..n)
                .flat_map(|from| {
                    (0..n)
                        .filter(move |&to| to != from)
                        .map(move |to| (from, to))
                })
                .map(|pair| (pair, SimTime::ZERO))
                .collect(),
            disk_done: vec![None; n],
            fail_schedule,
            replica_fail_schedule: Vec::new(),
            rejoin_schedule: Vec::new(),
            pending_rejoins: Vec::new(),
            transfer: None,
            checkpoint_schedule: Vec::new(),
            checkpoints: Vec::new(),
            reintegrations: Vec::new(),
            failovers: Vec::new(),
            lockstep: LockstepChecker::new(),
            acting_primary: 0,
            tracer: Tracer::new(4096),
            observers: Vec::new(),
            stats: RunStats::new(n),
        }
    }

    /// Registers a run observer. Multiple observers fire in
    /// registration order at every hook site.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// Removes and returns the registered observers (to read their
    /// accumulated state after [`FtSystem::run`]).
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        std::mem::take(&mut self.observers)
    }

    /// The default run-long statistics observer's accumulated state
    /// (installed on every run; see [`RunStats`]).
    pub fn run_stats(&self) -> &RunStats {
        &self.stats
    }

    /// Fans an event out to the always-installed [`RunStats`] observer
    /// and then every registered user observer — one fan-out, one
    /// accounting, so the run report and user observers can never see
    /// different events. Hook sites call this on driver event paths
    /// only (never the interpreter fast path).
    fn notify(&mut self, f: impl Fn(&mut dyn Observer)) {
        f(&mut self.stats);
        for obs in &mut self.observers {
            f(obs.as_mut());
        }
    }

    /// Accounts one offered frame through the default [`RunStats`]
    /// observer and the user observers: exactly one of
    /// `message_sent`/`message_dropped` per offer, with severed links
    /// distinguished from loss so wire-occupancy counts stay exact.
    fn note_offered(&mut self, from: usize, to: usize, bytes: usize, at: SimTime, accepted: bool) {
        if accepted {
            self.notify(|o| o.message_sent(from, to, bytes, at));
        } else {
            let reason = if self.net.is_severed(from, to) {
                DropReason::Severed
            } else {
                DropReason::Loss
            };
            self.notify(|o| o.message_dropped(from, to, at, reason));
        }
    }

    /// Guest instructions the acting primary has retired.
    pub fn primary_retired(&self) -> u64 {
        self.hosts[self.acting_primary].guest.cpu.retired()
    }

    /// Number of replicas (1 primary + `t` backups).
    pub fn replicas(&self) -> usize {
        self.hosts.len()
    }

    /// The configuration this system was built with.
    pub(crate) fn config(&self) -> &FtConfig {
        &self.cfg
    }

    /// Schedules an additional failstop of the then-acting primary at
    /// `at` (cascading failures for `t ≥ 2` systems). Failures fire in
    /// time order regardless of insertion order.
    pub fn schedule_failure(&mut self, at: SimTime) {
        self.fail_schedule.push(at);
        self.fail_schedule.sort();
    }

    /// Schedules a failstop of a *specific* replica at `at` — the way
    /// backup processors die. If the replica is the acting primary when
    /// the failure fires, this is equivalent to a primary failstop;
    /// otherwise the chain loses a backup: the acting primary stops
    /// counting it toward the acknowledgment condition
    /// ([`crate::protocol::ReplicaEngine::remove_peer`]) and the run
    /// continues with the survivors.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn schedule_replica_failure(&mut self, at: SimTime, replica: usize) {
        assert!(replica < self.hosts.len(), "no replica {replica}");
        self.replica_fail_schedule.push((at, replica));
        self.replica_fail_schedule.sort_by_key(|&(t, r)| (t, r));
    }

    /// Schedules the repair of a failstopped replica at `at`: its links
    /// are reopened and it waits on the LAN for a state transfer. At
    /// the acting primary's next epoch boundary the whole replica state
    /// is snapshotted and shipped in bounded-size chunks; once the
    /// final chunk arrives the replica restores it, rejoins the chain
    /// as a live backup, and every backup's failure detector is
    /// re-armed by recomputed rank — restoring `t`-fault coverage. If
    /// the replica is not failstopped when the event fires, it is a
    /// no-op.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn schedule_rejoin(&mut self, at: SimTime, replica: usize) {
        assert!(replica < self.hosts.len(), "no replica {replica}");
        self.rejoin_schedule.push((at, replica));
        self.rejoin_schedule.sort_by_key(|&(t, r)| (t, r));
    }

    /// Schedules a whole-system checkpoint barrier at `at`: at the
    /// acting primary's first epoch boundary at or past `at`, the same
    /// canonical state a reintegration transfer ships
    /// ([`ReplicaState`]) is captured into a [`SystemCheckpoint`],
    /// retrievable via [`FtSystem::checkpoints`]. The capture is pure —
    /// no wire traffic, no engine interaction — so a checkpointed run
    /// is observably identical to an uncheckpointed one, and under
    /// [`crate::cluster::Parallelism::Threads`] the capture commits on
    /// the coordinator in the same global order the sequential schedule
    /// uses, keeping the checkpoint itself bit-identical across modes.
    pub fn schedule_checkpoint(&mut self, at: SimTime) {
        self.checkpoint_schedule.push(at);
        self.checkpoint_schedule.sort();
    }

    /// Checkpoints captured so far, in capture order.
    pub fn checkpoints(&self) -> &[SystemCheckpoint] {
        &self.checkpoints
    }

    /// Access to the protocol-event tracer (disabled by default; enable
    /// with [`Tracer::set_enabled`] before [`FtSystem::run`]). Records
    /// failure injection, failover/promotion, P7 synthesis, and lockstep
    /// divergence — the low-frequency events worth a timeline.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Shared-disk access for test setup (pre-filling blocks).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Reads a word of a host's guest memory (test inspection).
    pub fn guest_mem_u32(&self, host: usize, paddr: u32) -> u32 {
        self.hosts[host].guest.mem.read_u32(paddr).unwrap_or(0)
    }

    // -----------------------------------------------------------------
    // Engine-effect execution
    // -----------------------------------------------------------------

    /// Carries out the effects an engine emitted for host `i`, in order.
    fn process_effects(&mut self, i: usize, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.transmit(i, to, msg),
                Effect::DeliverInterrupt(fwd) => {
                    self.hosts[i].guest.assert_irq(fwd.irq_bits);
                    self.apply_interrupt_payload(i, &fwd);
                    let at = self.hosts[i].now;
                    self.notify(|o| o.interrupt_delivered(i, fwd.irq_bits, at));
                }
                Effect::SynthesizeUncertain => self.synthesize_uncertain(i),
                Effect::ResumeHeldIo => {
                    let io = self.hosts[i].held_io.take().expect("held I/O to resume");
                    self.perform_io(i, io);
                    self.hosts[i].guest.finish_mmio_write();
                    self.hosts[i].sync_clock();
                }
                guest_local => apply_to_guest(&guest_local, &mut *self.hosts[i].guest),
            }
        }
    }

    fn transmit(&mut self, from: usize, to: usize, msg: Message) {
        let bytes = msg.wire_bytes();
        let mut now = self.hosts[from].now;
        // Bounded NIC-queue backpressure: when enabled, a sender whose
        // outbound queue is more than the bound ahead of its clock
        // blocks until the queue drains to the bound — the §4.3 (New)
        // streaming primary can no longer run arbitrarily ahead of a
        // saturated medium. Protocol data only; acks, retransmissions
        // and heartbeats are the NIC's own (tiny) control traffic.
        if let Some(bound) = self.cfg.nic_queue_bound {
            let queue_head = self.net.busy_until_of(from, to);
            if queue_head > now + bound {
                now = queue_head - bound;
                self.hosts[from].now = now;
            }
        }
        self.note_outbound(from, to, now);
        let accepted = match &mut self.rel {
            // Reliable mode: stamp a link-level sequence number, retain
            // a copy until the receiver's cumulative ack covers it, and
            // anchor the retransmit timer at the frame's serialization
            // end (a frame queued behind a backlog is not "lost").
            Some(rel) => {
                let window = rel.send.get_mut(&(from, to)).expect("send window");
                let frame = window.wrap(bytes, msg);
                let wire = frame.wire_bytes(bytes);
                let (tx_end, accepted) = self.net.send(now, from, to, wire, frame);
                let window = self
                    .rel
                    .as_mut()
                    .expect("rel unchanged")
                    .send
                    .get_mut(&(from, to))
                    .expect("send window");
                window.arm(tx_end);
                accepted
            }
            // Raw mode (the §2 lossless assumption): unsequenced frame,
            // wire timing identical to a bare `Message` channel.
            None => {
                let frame = Frame::Data {
                    seq: 0,
                    payload: msg,
                };
                let wire = frame.wire_bytes(bytes);
                self.net.send(now, from, to, wire, frame).1
            }
        };
        self.note_offered(from, to, bytes, now, accepted);
    }

    /// The device half of interrupt delivery: status register, DMA data,
    /// and operation-latency accounting.
    fn apply_interrupt_payload(&mut self, i: usize, fwd: &ForwardedInterrupt) {
        let host = &mut self.hosts[i];
        if let Some(dc) = &fwd.disk {
            host.disk_status_reg = dc.status;
            if let Some(inflight) = host.inflight.take() {
                if let Some(data) = &dc.data {
                    host.guest.mem.write_bytes(inflight.dma_addr, data);
                }
                host.op_latencies.push(host.now - inflight.issued_at);
            } else if let Some(data) = &dc.data {
                // Delivery with no recorded GO can only mean a protocol
                // bug; keep the memory effect anyway for debuggability.
                host.guest.mem.write_bytes(host.reg_addr, data);
            }
        }
    }

    /// Rule P7 with no surviving backups: the uncertain interrupt is
    /// applied locally, outside the message stream.
    fn synthesize_uncertain(&mut self, i: usize) {
        let host = &mut self.hosts[i];
        host.disk_status_reg = mmio::disk_status::UNCERTAIN;
        host.guest.assert_irq(irq::DISK);
        if let Some(inflight) = host.inflight.take() {
            host.op_latencies.push(host.now - inflight.issued_at);
        }
        let at = self.hosts[i].now;
        self.notify(|o| o.interrupt_delivered(i, irq::DISK, at));
    }

    // -----------------------------------------------------------------
    // Messaging
    // -----------------------------------------------------------------

    fn deliver_frame(&mut self, to: usize, from: usize, at: SimTime, frame: WireFrame) {
        if !self.hosts[to].alive() {
            // A failstopped (or finished) processor takes no further
            // part in the protocol: messages still draining from the
            // channels are dropped, never fed to its engine — a late
            // acknowledgment must not release a dead primary's held
            // I/O.
            return;
        }
        let host = &mut self.hosts[to];
        host.now = host.now.max(at);
        host.charge(self.cfg.cost.hv_msg_recv);
        if let Some(d) = &mut self.detectors[to] {
            // Any frame — data, duplicate, or link-level ack — proves
            // the sender alive.
            d.heard(at);
        }
        let payload = match frame {
            Frame::Ack { cum } => {
                // A link-level ack for data *we* sent to `from`.
                if let Some(rel) = &mut self.rel {
                    let now = self.hosts[to].now;
                    rel.send
                        .get_mut(&(to, from))
                        .expect("send window")
                        .on_ack(now, cum);
                }
                return;
            }
            Frame::Data { seq, payload } => {
                if let Some(rel) = &mut self.rel {
                    // Accept in sequence; answer every data frame —
                    // fresh or duplicate — with the cumulative ack, so
                    // the sender's window drains even when acks drop.
                    let rx = rel.recv.get_mut(&(from, to)).expect("recv window");
                    let fresh = rx.accept(seq);
                    let ack: WireFrame = Frame::Ack {
                        cum: rx.cumulative_ack(),
                    };
                    let bytes = ack.wire_bytes(0);
                    let now = self.hosts[to].now;
                    self.note_outbound(to, from, now);
                    let accepted = self.net.send(now, to, from, bytes, ack).1;
                    self.note_offered(to, from, bytes, now, accepted);
                    if !fresh {
                        self.notify(|o| o.duplicate_suppressed(from, to, now));
                        return;
                    }
                }
                payload
            }
            Frame::Heartbeat => {
                // Pure liveness: the detector reset above is the whole
                // point.
                return;
            }
        };
        if let Message::StateChunk {
            epoch,
            index,
            total,
            state,
            ..
        } = payload
        {
            if state.is_some() {
                debug_assert_eq!(index + 1, total, "state object rides the final chunk");
            }
            self.receive_chunk(to, from, at, epoch, state);
            return;
        }
        if self.hosts[to].life == Life::Rejoining {
            // A rejoining host has no live engine yet; anything but the
            // state transfer reaching it is stale traffic.
            return;
        }
        let effects = self.hosts[to].engine.message_received(from, payload);
        self.process_effects(to, effects);
    }

    /// Earliest armed retransmit timer, with its link, considering only
    /// links whose sender can still retransmit. Used by both the event
    /// horizon and the dispatcher so they can never disagree.
    fn next_retransmit(&self) -> Option<(SimTime, (usize, usize))> {
        let rel = self.rel.as_ref()?;
        rel.send
            .iter()
            .filter(|((from, _), _)| self.hosts[*from].alive())
            .filter_map(|(&pair, w)| w.deadline().map(|d| (d, pair)))
            .min()
    }

    /// A retransmit timer fired: re-send the window's unacknowledged
    /// tail, or disarm it if the destination is beyond reach (dead peer
    /// or severed link) so the timer cannot fire forever.
    fn fire_retransmit(&mut self, t: SimTime, pair: (usize, usize)) {
        let (from, to) = pair;
        let unreachable = !self.hosts[to].alive() || self.net.is_severed(from, to);
        let rel = self.rel.as_mut().expect("retransmit without RelNet");
        let window = rel.send.get_mut(&pair).expect("send window");
        if unreachable {
            window.disarm();
            return;
        }
        // Retransmission is NIC/controller work: it occupies the wire
        // but charges no guest time and does not move the host clock.
        // Bounded-burst with exponential backoff — see the congestion
        // notes on `hvft_net::reliable`.
        let burst = window.retransmit();
        if !burst.is_empty() {
            self.note_outbound(from, to, t);
            let frames = burst.len();
            let mut tx_end = t;
            // Re-sent frames go through the same per-frame observer
            // accounting as first transmissions (sent when the medium
            // schedules a delivery, dropped when loss consumes it), so
            // an observer's wire view stays complete under loss; the
            // aggregate retransmit hook reports the burst itself.
            let mut sent = Vec::with_capacity(frames);
            for out in burst {
                let wire = out.frame.wire_bytes(out.bytes);
                let (end, accepted) = self.net.send(t, from, to, wire, out.frame);
                tx_end = end;
                sent.push((out.bytes, accepted));
            }
            let rel = self.rel.as_mut().expect("retransmit without RelNet");
            rel.send.get_mut(&pair).expect("send window").rearm(tx_end);
            for (bytes, accepted) in sent {
                self.note_offered(from, to, bytes, t, accepted);
            }
            self.notify(|o| o.retransmit(from, to, frames, t));
        }
    }

    /// Records an outbound frame on `from → to` (heartbeat bookkeeping).
    fn note_outbound(&mut self, from: usize, to: usize, at: SimTime) {
        let slot = self.last_outbound.get_mut(&(from, to)).expect("link slot");
        *slot = (*slot).max(at);
    }

    /// How often a protocol-stalled acting primary beacons its
    /// liveness: enough heartbeat opportunities fit into the detection
    /// timeout that a false suspicion needs a long run of consecutive
    /// heartbeat losses on top of a long stall.
    fn heartbeat_period(&self) -> SimDuration {
        SimDuration::from_nanos((self.cfg.detector_timeout.as_nanos() / 16).max(1))
    }

    /// The next heartbeat instant, if one is needed. A heartbeat is
    /// needed only while the acting primary is stalled by the protocol
    /// (awaiting boundary or I/O acknowledgments): a running primary
    /// streams coordination messages anyway, and once its send windows
    /// drain a stalled one would otherwise fall silent — failure
    /// detectors must measure liveness, not protocol progress. The
    /// deadline is per peer link: the earliest quiet one governs.
    ///
    /// Heartbeats belong to the lossy-LAN machinery: without the
    /// reliable layer the §2 lossless-network assumption is in force,
    /// every send is a delivery, and the configured detection timeout
    /// already bounds every legitimate gap — so raw-channel runs stay
    /// bit-identical to the original prototype.
    fn next_heartbeat(&self) -> Option<SimTime> {
        self.rel.as_ref()?;
        let i = self.acting_primary;
        let host = &self.hosts[i];
        if host.life != Life::Active || !host.engine.is_primary() || host.engine.is_running() {
            return None;
        }
        host.engine
            .peers()
            .iter()
            .filter(|&&p| self.hosts[p].alive())
            .map(|&p| self.last_outbound[&(i, p)] + self.heartbeat_period())
            .min()
    }

    fn fire_heartbeat(&mut self, t: SimTime) {
        let i = self.acting_primary;
        let due: Vec<usize> = self.hosts[i]
            .engine
            .peers()
            .iter()
            .copied()
            .filter(|&p| {
                self.hosts[p].alive() && self.last_outbound[&(i, p)] + self.heartbeat_period() <= t
            })
            .collect();
        for p in due {
            self.note_outbound(i, p, t);
            let hb: WireFrame = Frame::Heartbeat;
            let bytes = hb.wire_bytes(0);
            let accepted = self.net.send(t, i, p, bytes, hb).1;
            self.note_offered(i, p, bytes, t, accepted);
        }
    }

    // -----------------------------------------------------------------
    // Epoch boundaries
    // -----------------------------------------------------------------

    fn epoch_end(&mut self, i: usize) {
        let epoch = self.hosts[i].guest.epoch();
        if self.cfg.lockstep_check {
            let hash = self.hosts[i].guest.state_hash();
            let before = self.lockstep.divergences().len();
            self.lockstep.record(i, epoch, hash);
            if self.lockstep.divergences().len() > before {
                self.tracer.emit(
                    self.hosts[i].now,
                    TraceCategory::Protocol,
                    Some(i as u8),
                    format!("LOCKSTEP DIVERGENCE at epoch {epoch}"),
                );
            }
        }
        self.hosts[i].charge(self.cfg.cost.hv_epoch_cpu);
        let at = self.hosts[i].now;
        self.notify(|o| o.epoch_boundary(i, epoch, at));
        if i == self.acting_primary {
            self.maybe_take_checkpoint(i, epoch);
            // Reintegration transfers start here — before this
            // boundary's `[Tme]`/`[end]` broadcast, so the rejoiner's
            // restore precedes every engine message on the FIFO link.
            self.maybe_start_transfer(i, epoch);
        }
        let vclock = self.hosts[i].guest.vclock.snapshot();
        let effects = self.hosts[i].engine.boundary_reached(epoch, vclock);
        self.process_effects(i, effects);
    }

    // -----------------------------------------------------------------
    // I/O at the acting primary
    // -----------------------------------------------------------------

    /// Carries out a (possibly §4.3-deferred) externally visible I/O.
    fn perform_io(&mut self, i: usize, io: PendingIo) {
        match io {
            PendingIo::DiskGo { cmd_value } => self.disk_go(i, cmd_value),
            PendingIo::ConsoleTx { byte } => {
                let now = self.hosts[i].now;
                self.console.write(now, i as u8, byte);
            }
        }
    }

    fn disk_go(&mut self, i: usize, cmd_value: u32) {
        let cmd = match cmd_value {
            mmio::disk_cmd::READ => DiskCommand::Read,
            mmio::disk_cmd::WRITE => DiskCommand::Write,
            _ => return,
        };
        let (block, addr, now) = (
            self.hosts[i].reg_block,
            self.hosts[i].reg_addr,
            self.hosts[i].now,
        );
        let write_data = match cmd {
            DiskCommand::Write => Some(
                self.hosts[i]
                    .guest
                    .mem
                    .read_bytes(addr, BLOCK_SIZE)
                    .to_vec(),
            ),
            DiskCommand::Read => None,
        };
        match self.disk.submit(now, i as u8, cmd, block) {
            Ok(dur) => {
                self.disk_done[i] = Some(now + dur);
                self.hosts[i].inflight = Some(InflightIo {
                    cmd,
                    dma_addr: addr,
                    write_data,
                    issued_at: now,
                });
            }
            Err(_) => {
                // Controller rejected (bad block / busy): surface as an
                // immediate uncertain completion through the normal
                // buffered path so all replicas see it identically.
                let fwd = ForwardedInterrupt {
                    irq_bits: irq::DISK,
                    disk: Some(DiskCompletion {
                        status: mmio::disk_status::UNCERTAIN,
                        data: None,
                    }),
                };
                self.hosts[i].inflight = Some(InflightIo {
                    cmd,
                    dma_addr: addr,
                    write_data,
                    issued_at: now,
                });
                let epoch = self.hosts[i].guest.epoch();
                let effects = self.hosts[i].engine.interrupt_raised(epoch, fwd);
                self.process_effects(i, effects);
            }
        }
    }

    /// Rule P1: device completion arrives at the acting primary.
    fn disk_completion(&mut self, i: usize) {
        self.hosts[i].charge(self.cfg.cost.hv_entry_exit);
        let cmd = self.hosts[i]
            .inflight
            .as_ref()
            .map(|io| io.cmd)
            .expect("completion without GO");
        debug_assert_eq!(self.disk.pending().map(|p| p.cmd), Some(cmd));
        let (status, data) = match cmd {
            DiskCommand::Write => {
                let data = self.hosts[i]
                    .inflight
                    .as_ref()
                    .and_then(|io| io.write_data.clone())
                    .expect("write completion without captured data");
                (self.disk.complete_write(&data), None)
            }
            DiskCommand::Read => {
                let (s, d) = self.disk.complete_read();
                (s, d)
            }
        };
        let status_reg = match status {
            DiskStatus::Complete => mmio::disk_status::DONE,
            DiskStatus::Uncertain => mmio::disk_status::UNCERTAIN,
        };
        let fwd = ForwardedInterrupt {
            irq_bits: irq::DISK,
            disk: Some(DiskCompletion {
                status: status_reg,
                data,
            }),
        };
        let epoch = self.hosts[i].guest.epoch();
        let effects = self.hosts[i].engine.interrupt_raised(epoch, fwd);
        self.process_effects(i, effects);
    }

    // -----------------------------------------------------------------
    // Failover (rules P6/P7)
    // -----------------------------------------------------------------

    /// Live backups after `of`, in chain (promotion) order. A replica
    /// mid-reintegration is on the LAN but holds no usable state, so it
    /// is not a survivor.
    fn survivors_after(&self, of: usize) -> Vec<usize> {
        (0..self.hosts.len())
            .filter(|&j| j != of && j != self.acting_primary && self.hosts[j].promotable())
            .collect()
    }

    /// The backup next in line for promotion, if any.
    fn next_in_line(&self) -> Option<usize> {
        (0..self.hosts.len()).find(|&j| j != self.acting_primary && self.hosts[j].promotable())
    }

    fn failover(&mut self, i: usize, at: SimTime) {
        if let Life::BackupDone(end) = self.hosts[i].life {
            // The backup's guest already finished the whole workload;
            // the primary's failure makes that (suppressed) completion
            // real.
            self.hosts[i].promoted = true;
            self.acting_primary = i;
            self.detectors[i] = None;
            self.hosts[i].now = self.hosts[i].now.max(at);
            let info = FailoverInfo {
                at: self.hosts[i].now,
                epoch: self.hosts[i].guest.epoch(),
                uncertain_synthesized: false,
            };
            self.failovers.push(info);
            self.notify(|o| o.failover(&info));
            self.hosts[i].life = Life::Done(end);
            return;
        }
        self.hosts[i].now = self.hosts[i].now.max(at);
        let survivors = self.survivors_after(i);
        let outstanding = self.hosts[i].inflight.is_some();
        let vclock = self.hosts[i].guest.vclock.snapshot();
        let (effects, promo) =
            self.hosts[i]
                .engine
                .promote_at_boundary(vclock, outstanding, survivors.clone());
        self.hosts[i].promoted = true;
        self.acting_primary = i;
        self.detectors[i] = None;
        self.process_effects(i, effects);
        // Survivors re-arm against the new primary, ranks shifted up.
        let now = self.hosts[i].now;
        for (rank0, &s) in survivors.iter().enumerate() {
            let mut d = FailureDetector::new(self.cfg.detector_timeout * (rank0 as u64 + 1));
            d.heard(now);
            self.detectors[s] = Some(d);
        }
        self.tracer.emit(
            now,
            TraceCategory::Failure,
            Some(i as u8),
            format!(
                "P6: backup promoted at end of epoch {}{}",
                promo.epoch,
                if promo.uncertain_synthesized {
                    "; P7 synthesized an uncertain interrupt"
                } else {
                    ""
                }
            ),
        );
        let info = FailoverInfo {
            at: now,
            epoch: promo.epoch,
            uncertain_synthesized: promo.uncertain_synthesized,
        };
        self.failovers.push(info);
        self.notify(|o| o.failover(&info));
    }

    // -----------------------------------------------------------------
    // MMIO handling
    // -----------------------------------------------------------------

    fn handle_mmio_read(&mut self, i: usize, paddr: u32) {
        let off = paddr.wrapping_sub(IO_BASE);
        let value = match off {
            mmio::DISK_REG_STATUS => self.hosts[i].disk_status_reg,
            mmio::DISK_REG_BLOCK => self.hosts[i].reg_block,
            mmio::DISK_REG_ADDR => self.hosts[i].reg_addr,
            mmio::CONSOLE_REG_STATUS => 1,
            _ => 0,
        };
        self.hosts[i].guest.finish_mmio_read(value);
        self.hosts[i].sync_clock();
    }

    fn handle_mmio_write(&mut self, i: usize, paddr: u32, value: u32) {
        let off = paddr.wrapping_sub(IO_BASE);
        let is_primary = self.hosts[i].engine.is_primary();
        match off {
            mmio::DISK_REG_BLOCK => self.hosts[i].reg_block = value,
            mmio::DISK_REG_ADDR => self.hosts[i].reg_addr = value,
            mmio::DISK_REG_CMD => {
                if is_primary {
                    let io = PendingIo::DiskGo { cmd_value: value };
                    if self.hosts[i].engine.io_requested() == IoGate::Hold {
                        self.hosts[i].held_io = Some(io);
                        return; // MMIO completes after the acks arrive.
                    }
                    self.perform_io(i, io);
                } else {
                    // Case (i) of §2.2: backup I/O is suppressed; record
                    // the attempt for P7's outstanding-I/O bookkeeping.
                    let cmd = match value {
                        mmio::disk_cmd::READ => Some(DiskCommand::Read),
                        mmio::disk_cmd::WRITE => Some(DiskCommand::Write),
                        _ => None,
                    };
                    if let Some(cmd) = cmd {
                        let h = &mut self.hosts[i];
                        h.inflight = Some(InflightIo {
                            cmd,
                            dma_addr: h.reg_addr,
                            write_data: None,
                            issued_at: h.now,
                        });
                    }
                }
            }
            mmio::CONSOLE_REG_TX if is_primary => {
                let io = PendingIo::ConsoleTx { byte: value as u8 };
                if self.hosts[i].engine.io_requested() == IoGate::Hold {
                    self.hosts[i].held_io = Some(io);
                    return;
                }
                self.perform_io(i, io);
            }
            // Backup console output is suppressed entirely.
            _ => {}
        }
        self.hosts[i].guest.finish_mmio_write();
        self.hosts[i].sync_clock();
    }

    // -----------------------------------------------------------------
    // Failure injection
    // -----------------------------------------------------------------

    fn inject_failure(&mut self, at: SimTime) {
        let victim = self.acting_primary;
        if !matches!(self.hosts[victim].life, Life::Active | Life::BackupDone(_)) {
            return;
        }
        self.hosts[victim].now = self.hosts[victim].now.max(at);
        self.hosts[victim].life = Life::Dead;
        self.tracer.emit(
            at,
            TraceCategory::Failure,
            Some(victim as u8),
            "primary processor failstopped".to_owned(),
        );
        // In-flight messages still arrive (the backup "detects the
        // primary's failure only after receiving the last message
        // sent"), but nothing further leaves the dead processor, and
        // nothing is worth sending to it.
        self.net.sever_all_of(victim);
        self.disarm_windows_of(victim);
        // A disk operation in flight from the dead host is abandoned:
        // the medium may or may not have absorbed it, and no interrupt
        // will ever be delivered for it — the §2.2 two-generals corner.
        if self.disk_done[victim].take().is_some() {
            let data = self.hosts[victim]
                .inflight
                .as_ref()
                .and_then(|io| io.write_data.clone());
            self.disk.abandon(data.as_deref());
        }
        // A state transfer in flight from the dead primary is aborted;
        // the rejoiner stays queued and the successor restarts the
        // transfer from its own boundary snapshot. Chunks already on
        // the wire are rejected by the receiver's sender check.
        self.transfer = None;
    }

    /// Drops all retransmission state touching a failstopped replica:
    /// the dead processor re-sends nothing, and frames addressed to it
    /// are no longer worth recovering.
    fn disarm_windows_of(&mut self, victim: usize) {
        if let Some(rel) = &mut self.rel {
            for (&(from, to), w) in rel.send.iter_mut() {
                if from == victim || to == victim {
                    w.disarm();
                }
            }
        }
    }

    /// Failstops a specific replica. A backup's death removes it from
    /// the acting primary's peer set (which may resume a primary
    /// stalled on that backup's acknowledgments); a death of the acting
    /// primary itself degenerates to [`FtSystem::inject_failure`].
    fn inject_replica_failure(&mut self, at: SimTime, victim: usize) {
        if victim == self.acting_primary {
            self.inject_failure(at);
            return;
        }
        if !self.hosts[victim].alive() {
            return;
        }
        self.hosts[victim].now = self.hosts[victim].now.max(at);
        self.hosts[victim].life = Life::Dead;
        self.detectors[victim] = None;
        self.tracer.emit(
            at,
            TraceCategory::Failure,
            Some(victim as u8),
            "backup processor failstopped".to_owned(),
        );
        self.net.sever_all_of(victim);
        self.disarm_windows_of(victim);
        // The acting primary detects the backup's silence (modelled at
        // the failure instant, like the instruction-limit path) and
        // stops counting it toward the acknowledgment condition.
        let ap = self.acting_primary;
        if self.hosts[ap].alive() {
            let effects = self.hosts[ap].engine.remove_peer(victim);
            self.process_effects(ap, effects);
        }
        // A repaired replica that dies again mid-reintegration leaves
        // the rejoin pipeline entirely.
        if self.transfer.is_some_and(|(v, _)| v == victim) {
            self.transfer = None;
        }
        self.pending_rejoins.retain(|&v| v != victim);
    }

    // -----------------------------------------------------------------
    // Reintegration: epoch-boundary state transfer to a repaired backup
    // -----------------------------------------------------------------

    /// The rejoin schedule fired: put the repaired processor back on
    /// the LAN. Its links reopen, its link-layer windows restart, and
    /// it queues for a state transfer at the acting primary's next
    /// epoch boundary. A replica that is not failstopped is left alone.
    fn begin_rejoin(&mut self, at: SimTime, victim: usize) {
        if self.hosts[victim].life != Life::Dead {
            return;
        }
        self.net.unsever_all_of(victim);
        self.reset_windows_of(victim);
        let h = &mut self.hosts[victim];
        h.life = Life::Rejoining;
        h.now = h.now.max(at);
        h.held_io = None;
        h.inflight = None;
        h.disk_status_reg = mmio::disk_status::IDLE;
        self.pending_rejoins.push(victim);
        self.tracer.emit(
            at,
            TraceCategory::Failure,
            Some(victim as u8),
            "repaired processor back on the LAN; awaiting state transfer".to_owned(),
        );
    }

    /// Replaces the link-layer state of every directed link touching a
    /// repaired replica with fresh windows: the reconnect starts a new
    /// frame sequence space on both sides, mirroring the fresh engine
    /// sequence space the rejoiner gets at restore.
    fn reset_windows_of(&mut self, victim: usize) {
        let Some(rto) = self.cfg.retransmit else {
            return;
        };
        let rel = self.rel.as_mut().expect("retransmit implies RelNet");
        for (&(from, to), w) in rel.send.iter_mut() {
            if from == victim || to == victim {
                *w = SendWindow::new(rto);
            }
        }
        for (&(from, to), w) in rel.recv.iter_mut() {
            if from == victim || to == victim {
                *w = RecvWindow::new();
            }
        }
    }

    /// Serves the checkpoint schedule at the acting primary's epoch
    /// boundary: every barrier at or before this boundary captures the
    /// canonical state — the guest snapshot plus device shadows that a
    /// reintegration transfer would ship — without touching the wire or
    /// the engine, so the run proceeds exactly as if no checkpoint had
    /// been taken.
    fn maybe_take_checkpoint(&mut self, i: usize, epoch: u64) {
        let now = self.hosts[i].now;
        while self
            .checkpoint_schedule
            .first()
            .is_some_and(|&req| req <= now)
        {
            let requested = self.checkpoint_schedule.remove(0);
            let state = self.capture_replica_state(i);
            let bytes = state.guest.wire_bytes();
            self.notify(|o| o.snapshot_taken(i, epoch, bytes, now));
            self.tracer.emit(
                now,
                TraceCategory::Protocol,
                Some(i as u8),
                format!("checkpoint at end of epoch {epoch} ({bytes} bytes of canonical state)"),
            );
            self.checkpoints.push(SystemCheckpoint {
                requested,
                at: now,
                epoch,
                state_hash: self.hosts[i].guest.state_hash(),
                state,
            });
        }
    }

    /// Serves the rejoin queue at the acting primary's epoch boundary:
    /// snapshots this replica's whole canonical state, streams it to
    /// the repaired backup in bounded-size chunks, and admits the
    /// backup to the engine's peer set — in that order, and all before
    /// this boundary's `[Tme]`/`[end]` broadcast, so the re-forwarded
    /// interrupts and the boundary sequence queue behind the transfer
    /// on the same FIFO link and reach the rejoiner only after its
    /// restore. One transfer runs at a time; further repaired replicas
    /// wait for a later boundary.
    fn maybe_start_transfer(&mut self, i: usize, epoch: u64) {
        if self.transfer.is_some() {
            return;
        }
        self.pending_rejoins
            .retain(|&v| self.hosts[v].life == Life::Rejoining);
        let Some(&victim) = self.pending_rejoins.first() else {
            return;
        };
        let state = self.capture_replica_state(i);
        let total_bytes = state.guest.wire_bytes();
        self.transfer = Some((victim, epoch));
        let at = self.hosts[i].now;
        self.notify(|o| o.snapshot_taken(i, epoch, total_bytes, at));
        self.tracer.emit(
            at,
            TraceCategory::Failure,
            Some(i as u8),
            format!(
                "snapshot at end of epoch {epoch}: streaming {total_bytes} bytes to replica {victim}"
            ),
        );
        const CHUNK: u64 = 8192;
        let total = total_bytes.div_ceil(CHUNK).max(1) as u32;
        let state = Rc::new(state);
        for index in 0..total {
            let bytes = if index + 1 == total {
                (total_bytes - u64::from(index) * CHUNK) as u32
            } else {
                CHUNK as u32
            };
            // Only the final chunk carries the state object: the
            // simulation ships structure once, the link model charges
            // per-chunk bytes.
            let payload = (index + 1 == total).then(|| Rc::clone(&state));
            self.transmit_chunk(
                i,
                victim,
                Message::StateChunk {
                    epoch,
                    index,
                    total,
                    bytes,
                    state: payload,
                },
            );
        }
        let effects = self.hosts[i].engine.add_peer(victim);
        self.process_effects(i, effects);
    }

    /// Captures the canonical state shipped during reintegration: the
    /// guest snapshot plus the driver-level device shadows. The shared
    /// disk and console are environment, not replica state — they are
    /// never shipped.
    fn capture_replica_state(&self, i: usize) -> ReplicaState {
        let h = &self.hosts[i];
        ReplicaState {
            guest: h.guest.snapshot(),
            reg_block: h.reg_block,
            reg_addr: h.reg_addr,
            disk_status_reg: h.disk_status_reg,
            inflight: h.inflight.as_ref().map(|io| {
                let cmd_value = match io.cmd {
                    DiskCommand::Read => mmio::disk_cmd::READ,
                    DiskCommand::Write => mmio::disk_cmd::WRITE,
                };
                (cmd_value, io.dma_addr)
            }),
        }
    }

    /// Transmits one state-transfer chunk: the wire mechanics of
    /// [`FtSystem::transmit`] minus the NIC-queue clamp — the transfer
    /// is controller-driven background traffic that occupies the wire
    /// but must not stall the primary's guest, exactly like
    /// retransmissions.
    fn transmit_chunk(&mut self, from: usize, to: usize, msg: Message) {
        let bytes = msg.wire_bytes();
        let now = self.hosts[from].now;
        self.note_outbound(from, to, now);
        let accepted = match &mut self.rel {
            Some(rel) => {
                let window = rel.send.get_mut(&(from, to)).expect("send window");
                let frame = window.wrap(bytes, msg);
                let wire = frame.wire_bytes(bytes);
                let (tx_end, accepted) = self.net.send(now, from, to, wire, frame);
                self.rel
                    .as_mut()
                    .expect("rel unchanged")
                    .send
                    .get_mut(&(from, to))
                    .expect("send window")
                    .arm(tx_end);
                accepted
            }
            None => {
                let frame = Frame::Data {
                    seq: 0,
                    payload: msg,
                };
                let wire = frame.wire_bytes(bytes);
                self.net.send(now, from, to, wire, frame).1
            }
        };
        self.note_offered(from, to, bytes, now, accepted);
    }

    /// A state-transfer chunk reached a rejoining replica. Chunks from
    /// anyone but the current transfer's sender — e.g. still in flight
    /// from a primary that died mid-transfer — are dropped; the
    /// successor restarts the transfer from its own boundary snapshot.
    fn receive_chunk(
        &mut self,
        to: usize,
        from: usize,
        at: SimTime,
        epoch: u64,
        state: Option<Rc<ReplicaState>>,
    ) {
        if self.hosts[to].life != Life::Rejoining
            || from != self.acting_primary
            || self.transfer != Some((to, epoch))
        {
            return;
        }
        if let Some(state) = state {
            self.finish_reintegration(to, from, epoch, &state, at);
        }
    }

    /// The final chunk arrived: restore the replica, give it a fresh
    /// backup engine acknowledging toward the sender, readmit it to the
    /// detector rank order, and declare `t`-fault coverage restored.
    ///
    /// The restored guest is parked at the end of the snapshot epoch
    /// (recovery counter expired), so its next slice re-raises
    /// [`HvEvent::EpochEnd`]: it records the same lockstep hash the
    /// donor did, then waits for the `[Tme]`/`[end]` queued right
    /// behind the transfer — from there on it is an ordinary backup.
    fn finish_reintegration(
        &mut self,
        victim: usize,
        from: usize,
        epoch: u64,
        state: &ReplicaState,
        at: SimTime,
    ) {
        let bytes = state.guest.wire_bytes();
        {
            let h = &mut self.hosts[victim];
            h.guest.restore(&state.guest);
            h.synced_elapsed = h.guest.elapsed();
            h.now = h.now.max(at);
            h.reg_block = state.reg_block;
            h.reg_addr = state.reg_addr;
            h.disk_status_reg = state.disk_status_reg;
            h.inflight = state.inflight.map(|(cmd_value, dma_addr)| InflightIo {
                cmd: if cmd_value == mmio::disk_cmd::WRITE {
                    DiskCommand::Write
                } else {
                    DiskCommand::Read
                },
                dma_addr,
                // Backup-style: rule P3 suppressed I/O never captures
                // write data; P7 bookkeeping only needs the descriptor.
                write_data: None,
                issued_at: h.now,
            });
            h.held_io = None;
            h.engine = ReplicaEngine::new_backup(victim, from, self.cfg.protocol);
            h.life = Life::Active;
        }
        self.transfer = None;
        self.pending_rejoins.retain(|&v| v != victim);
        // Every live backup re-arms by recomputed rank: the rejoiner
        // slots back into the chain order, shifting deeper backups'
        // timeouts so exactly one replica still suspects first.
        let backups: Vec<usize> = (0..self.hosts.len())
            .filter(|&j| j != self.acting_primary && self.hosts[j].promotable())
            .collect();
        for (rank0, &b) in backups.iter().enumerate() {
            let mut d = FailureDetector::new(self.cfg.detector_timeout * (rank0 as u64 + 1));
            d.heard(at);
            self.detectors[b] = Some(d);
        }
        let info = ReintegrationInfo {
            at,
            replica: victim,
            epoch,
            bytes,
        };
        self.reintegrations.push(info);
        self.tracer.emit(
            at,
            TraceCategory::Failure,
            Some(victim as u8),
            format!(
                "reintegrated as live backup at end of epoch {epoch} ({bytes} bytes transferred)"
            ),
        );
        self.notify(|o| o.replica_reintegrated(victim, epoch, bytes, at));
    }

    // -----------------------------------------------------------------
    // The conservative co-simulation loop
    // -----------------------------------------------------------------

    /// Handles one guest-level event from host `i`'s hypervisor.
    fn dispatch_guest_event(&mut self, i: usize, ev: HvEvent) {
        match ev {
            HvEvent::BudgetExhausted => {}
            HvEvent::EpochEnd => self.epoch_end(i),
            HvEvent::MmioRead { paddr } => self.handle_mmio_read(i, paddr),
            HvEvent::MmioWrite { paddr, value } => self.handle_mmio_write(i, paddr, value),
            HvEvent::Diag { value, code } => {
                self.hosts[i].diags.push((value, code));
                let end = if code == hvft_guest::layout::diag::EXIT {
                    Some(RunEnd::Exit { code: value })
                } else if code == hvft_guest::layout::diag::FATAL {
                    Some(RunEnd::Fatal { code: Some(value) })
                } else {
                    None
                };
                if let Some(end) = end {
                    self.finish_host(i, end);
                }
            }
            HvEvent::Halted => {
                let code = self.hosts[i]
                    .diags
                    .iter()
                    .rev()
                    .find(|(_, c)| *c == hvft_guest::layout::diag::EXIT)
                    .map(|(v, _)| *v);
                let end = match code {
                    Some(c) => RunEnd::Exit { code: c },
                    None => RunEnd::Fatal { code: None },
                };
                self.finish_host(i, end);
            }
            HvEvent::Idle => {
                // Our guests spin rather than idle; treat as a fatal
                // condition so tests catch unexpected kernels.
                self.finish_host(i, RunEnd::Fatal { code: None });
            }
        }
    }

    /// Marks a host's workload as finished. At the acting primary this
    /// ends the run; at an unpromoted backup the (suppressed) exit parks
    /// the host until it learns the primary's fate.
    fn finish_host(&mut self, i: usize, end: RunEnd) {
        if self.hosts[i].engine.is_primary() {
            self.hosts[i].life = Life::Done(end);
        } else {
            self.hosts[i].life = Life::BackupDone(end);
        }
    }

    /// Builds this instant's event agenda: every pending event source,
    /// offered in fixed priority order — primary failure, replica
    /// failure, disk completions (host order), deliveries, retransmit
    /// timers, heartbeat, detectors (backup order). The heartbeat
    /// precedes the detectors so a stalled-but-live primary beats
    /// suspicion to the same instant. One [`Agenda`] pick answers both
    /// "when is the next event" and "which event fires", so the two can
    /// never disagree.
    fn event_agenda(&self) -> Agenda<EventTag> {
        let mut agenda = Agenda::new();
        agenda.offer(
            self.fail_schedule.first().copied(),
            EventTag::PrimaryFailure,
        );
        agenda.offer(
            self.replica_fail_schedule.first().map(|&(t, _)| t),
            EventTag::ReplicaFailure,
        );
        agenda.offer(
            self.rejoin_schedule.first().map(|&(t, _)| t),
            EventTag::Rejoin,
        );
        for (i, done) in self.disk_done.iter().enumerate() {
            agenda.offer(*done, EventTag::DiskCompletion(i));
        }
        agenda.offer(self.net.next_delivery(), EventTag::Delivery);
        if let Some((due, pair)) = self.next_retransmit() {
            agenda.offer(Some(due), EventTag::Retransmit(pair.0, pair.1));
        }
        agenda.offer(self.next_heartbeat(), EventTag::Heartbeat);
        for b in 0..self.hosts.len() {
            if b == self.acting_primary || !self.hosts[b].waiting_as_backup() {
                continue;
            }
            if let Some(det) = &self.detectors[b] {
                agenda.offer(Some(det.deadline()), EventTag::Detector(b));
            }
        }
        agenda
    }

    /// Fires one event picked from the agenda at time `t`.
    fn fire_event(&mut self, t: SimTime, tag: EventTag) {
        match tag {
            EventTag::PrimaryFailure => {
                self.fail_schedule.remove(0);
                self.inject_failure(t);
            }
            EventTag::ReplicaFailure => {
                let (_, victim) = self.replica_fail_schedule.remove(0);
                self.inject_replica_failure(t, victim);
            }
            EventTag::Rejoin => {
                let (_, victim) = self.rejoin_schedule.remove(0);
                self.begin_rejoin(t, victim);
            }
            EventTag::DiskCompletion(i) => {
                self.disk_done[i] = None;
                self.hosts[i].now = self.hosts[i].now.max(t);
                self.disk_completion(i);
            }
            EventTag::Delivery => {
                if let Some((from, to, frame)) = self.net.pop_due(t) {
                    self.deliver_frame(to, from, t, frame);
                }
            }
            EventTag::Retransmit(from, to) => self.fire_retransmit(t, (from, to)),
            EventTag::Heartbeat => self.fire_heartbeat(t),
            EventTag::Detector(b) => {
                let next = self.next_in_line();
                let Some(det) = &mut self.detectors[b] else {
                    return;
                };
                if Some(b) == next {
                    if det.expired(t) {
                        self.failover(b, t);
                    }
                } else {
                    // Suspecting out of turn (an earlier live backup has
                    // promotion priority): defer to the chain order and
                    // re-arm rather than risk two promoters.
                    det.heard(t);
                }
            }
        }
    }

    /// Fires the earliest pending event, if any.
    pub(crate) fn fire_next_event(&mut self) {
        if let Some((t, tag)) = self.event_agenda().into_earliest() {
            self.fire_event(t, tag);
        }
    }

    /// Runs the system until the acting primary's workload completes —
    /// the degenerate one-component schedule of the shared kernel.
    pub fn run(&mut self) -> FtRunResult {
        sched::run_solo(self)
    }

    /// The earliest instant at which this system can do anything: its
    /// next pending event, or the clock of its laggiest runnable host.
    /// `None` means the system is finished (or deadlocked) — stepping
    /// it again will produce a result without advancing time. A
    /// multi-system driver ([`crate::cluster::FtCluster`]) steps
    /// whichever of its shards reports the smallest value.
    ///
    /// This never touches the hosts' guests, so it stays answerable
    /// while a planned slice executes on a worker thread.
    pub fn next_action_time(&self) -> Option<SimTime> {
        let mut t = self.event_agenda().earliest().map(|(t, _)| t);
        for host in &self.hosts {
            if host.runnable() && t.is_none_or(|cur| host.now < cur) {
                t = Some(host.now);
            }
        }
        t
    }

    /// Decides (and prepares) the system's next scheduling action.
    ///
    /// The decision depends only on this system's own state — never on
    /// what other shards sharing a medium have done since this system
    /// last committed — which is the invariant that lets the parallel
    /// cluster executor plan a slice early and execute it off-thread
    /// while earlier-scheduled shards are still committing.
    pub(crate) fn plan(&mut self) -> StepPlan {
        // Completion check.
        if let Life::Done(_) = self.hosts[self.acting_primary].life {
            return StepPlan::Finished;
        }
        // Instruction-limit guard (idempotent: a tripped host is no
        // longer runnable on the second look).
        for i in 0..self.hosts.len() {
            if self.hosts[i].runnable() && self.hosts[i].guest.cpu.retired() >= self.cfg.max_insns {
                self.hosts[i].life = Life::Done(RunEnd::InsnLimit);
                if i != self.acting_primary {
                    let effects = self.hosts[self.acting_primary].engine.remove_peer(i);
                    self.process_effects(self.acting_primary, effects);
                }
            }
        }

        let ev_time = self.event_agenda().earliest().map(|(t, _)| t);
        // Runnable hosts in commit order: ascending clock, host index
        // breaking ties — exactly the order the one-slice-at-a-time
        // schedule would have picked them in.
        let mut order: Vec<usize> = (0..self.hosts.len())
            .filter(|&i| self.hosts[i].runnable())
            .collect();
        order.sort_by_key(|&i| (self.hosts[i].now, i));

        let Some(&first) = order.first() else {
            return match ev_time {
                // Nothing can run; advance by events.
                Some(_) => StepPlan::Event,
                // Deadlock: nobody runnable, no events. This is a
                // protocol bug or an ended run; stepping yields the
                // result.
                None => StepPlan::Finished,
            };
        };
        // Events at (or within one instruction of) the laggiest host's
        // clock go first — a budget smaller than one instruction cannot
        // make progress.
        if let Some(t) = ev_time {
            if t <= self.hosts[first].now.saturating_add(self.cfg.cost.insn) {
                return StepPlan::Event;
            }
        }
        // The wave: every runnable replica whose conservative horizon
        // permits at least one instruction of progress gets its own
        // independent slice, budgeted from this one state snapshot. The
        // horizon is the earliest thing that could affect anyone — the
        // next pending event, or any *other* replica's clock plus the
        // link's minimum latency (a peer cannot influence this replica
        // sooner than that; anything a peer's commit schedules later in
        // this wave is therefore at or beyond every horizon computed
        // here, which is why planning from the snapshot is safe).
        let lookahead = self.cfg.link.min_latency();
        let insn = self.cfg.cost.insn;
        let wave = order
            .iter()
            .filter_map(|&i| {
                let now = self.hosts[i].now;
                let mut horizon = ev_time.unwrap_or(SimTime::MAX);
                for &j in &order {
                    if j != i {
                        horizon = horizon.min(self.hosts[j].now.saturating_add(lookahead));
                    }
                }
                let budget = if horizon == SimTime::MAX {
                    // No horizon at all: the idle grain keeps external
                    // schedules responsive.
                    SimDuration::from_millis(10)
                } else if horizon > now.saturating_add(insn) {
                    horizon - now
                } else if i == first {
                    // The laggiest host always advances (its horizon is
                    // at least the lookahead past its own clock), so
                    // the wave is never empty and time cannot stall.
                    sched::conservative_budget(
                        now,
                        ev_time,
                        order
                            .iter()
                            .filter(|&&j| j != i)
                            .map(|&j| self.hosts[j].now),
                        lookahead,
                        SimDuration::from_millis(10),
                    )
                } else {
                    // Too far ahead of a peer: it waits this wave out.
                    return None;
                };
                Some(SlicePlan { host: i, budget })
            })
            .collect();
        StepPlan::Slices(wave)
    }

    /// Executes a planned guest slice inline.
    pub(crate) fn run_slice(&mut self, host: usize, budget: SimDuration) -> HvEvent {
        self.hosts[host].guest.run(budget)
    }

    /// Commits a completed guest slice: folds the guest's time into the
    /// host clock and dispatches the hypervisor event.
    pub(crate) fn commit_slice(&mut self, host: usize, event: HvEvent) {
        self.hosts[host].sync_clock();
        self.dispatch_guest_event(host, event);
    }

    /// Detaches a host's guest for off-thread slice execution (the
    /// parallel cluster executor). The system must not be stepped for
    /// this host until [`FtSystem::attach_guest`] returns it.
    pub(crate) fn detach_guest(&mut self, host: usize) -> HvGuest {
        self.hosts[host].guest.detach()
    }

    /// Returns a detached guest.
    pub(crate) fn attach_guest(&mut self, host: usize, guest: HvGuest) {
        self.hosts[host].guest.attach(guest);
    }

    /// Produces the final result after a [`StepPlan::Finished`] plan.
    pub(crate) fn finish_run(&mut self) -> FtRunResult {
        let end = match self.hosts[self.acting_primary].life {
            Life::Done(e) => e,
            _ => RunEnd::Fatal { code: None },
        };
        self.result(end)
    }

    /// Advances the system by one scheduling decision — one event, or
    /// one conservative slice of one guest — and returns the final
    /// result once the run is over. [`FtSystem::run`] is exactly this
    /// in a loop; a cluster driver interleaves `step` calls across
    /// systems sharing a medium.
    pub fn step(&mut self) -> Option<FtRunResult> {
        match self.plan() {
            StepPlan::Finished => Some(self.finish_run()),
            StepPlan::Event => {
                self.fire_next_event();
                None
            }
            StepPlan::Slices(wave) => {
                // Execute the wave in plan (commit) order. The parallel
                // executor runs these same slices concurrently and then
                // commits in this exact order, so both paths fold the
                // identical sequence of (host, event) pairs into state.
                for s in wave {
                    let event = self.run_slice(s.host, s.budget);
                    self.commit_slice(s.host, event);
                }
                None
            }
        }
    }

    fn result(&mut self, outcome: RunEnd) -> FtRunResult {
        let ap = self.acting_primary;
        let retries_addr = hvft_guest::layout::kdata::RETRIES;
        // Wire counters come from the default RunStats observer — the
        // same hooks any user observer sees — not from channel-layer
        // internals (the bespoke-counter plumbing this subsumed).
        let messages_per_replica = self.stats.frames_per_replica.clone();
        let (frames_retransmitted, frames_suppressed) = (
            self.stats.frames_retransmitted,
            self.stats.frames_suppressed,
        );
        FtRunResult {
            outcome,
            completion_time: self.hosts[ap].now - SimTime::ZERO,
            failovers: self.failovers.clone(),
            lockstep: self.lockstep.clone(),
            console_output: self.console.output(),
            console_hosts: self.console.hosts_seen(),
            disk_log: self.disk.log().to_vec(),
            primary_stats: *self.hosts[ap].guest.stats(),
            replica_stats: self.hosts.iter().map(|h| *h.guest.stats()).collect(),
            op_latencies: {
                let mut v = self.hosts[0].op_latencies.clone();
                for host in &self.hosts[1..] {
                    if host.promoted {
                        v.extend_from_slice(&host.op_latencies);
                    }
                }
                v
            },
            guest_retries: self.hosts[ap].guest.mem.read_u32(retries_addr).unwrap_or(0),
            messages_per_replica,
            frames_retransmitted,
            frames_suppressed,
            reintegrations: self.reintegrations.clone(),
            state_transfer_bytes: self.stats.state_transfer_bytes,
        }
    }
}

/// [`FtSystem`] as a kernel [`Component`]: [`FtSystem::run`] is the
/// one-component schedule, and [`crate::cluster::FtCluster`] registers
/// many of these on one [`hvft_sim::sched::Scheduler`].
impl Component for FtSystem {
    type Output = FtRunResult;

    fn next_action_time(&self) -> Option<SimTime> {
        FtSystem::next_action_time(self)
    }

    fn advance(&mut self) -> Option<FtRunResult> {
        self.step()
    }
}
