//! The 1-fault-tolerant virtual machine: two hypervised hosts, the
//! shared environment, and rules P1–P7.
//!
//! [`FtSystem`] co-simulates the primary's and backup's processors with
//! a conservative discrete-event scheme: each host advances its own
//! simulated clock, and a host may never run past the earliest event
//! that could affect it (the link's minimum latency provides the
//! lookahead). The result is a bit-deterministic simulation of the whole
//! prototype of §3 — two HP 9000/720-class machines, a shared disk, a
//! console, and a coordination LAN.
//!
//! Protocol rules implemented here, by their paper names:
//!
//! - **P1**: an interrupt received at the primary during epoch `E` is
//!   buffered for delivery at the end of `E` and forwarded as `[E, Int]`;
//! - **P2**: at the end of epoch `E` the primary sends `[Tme_p]`,
//!   (original protocol) awaits acknowledgments for everything sent,
//!   delivers buffered interrupts, sends `[end, E]`, and starts `E+1`;
//! - **P3**: the backup's hypervisor ignores interrupts destined for the
//!   backup VM (device interrupts only ever target the issuing host
//!   here, and the backup suppresses device commands, so nothing to
//!   ignore arises by construction — its I/O suppression implements the
//!   same effect);
//! - **P4**: the backup acknowledges and buffers `[E, Int]`;
//! - **P5**: at the end of its epoch `E` the backup awaits `[Tme_p]`,
//!   assigns it, awaits `[end, E]`, delivers the epoch-`E` buffer, and
//!   starts `E+1`;
//! - **P6**: if instead the failure detector fires, the backup delivers
//!   what it buffered and **promotes itself**;
//! - **P7**: any I/O outstanding at the end of the failover epoch gets a
//!   synthesized *uncertain* interrupt, so the (replayed) driver retries
//!   — repetition the environment must tolerate anyway (IO2);
//! - **§4.3 revision**: the boundary ack-wait of P2 is dropped; instead
//!   acknowledgments must be complete before the primary initiates any
//!   I/O operation, I/O being the only way VM state is revealed.

use crate::config::{FailureSpec, FtConfig, ProtocolVariant};
use crate::lockstep::LockstepChecker;
use crate::messages::{DiskCompletion, ForwardedInterrupt, Message};
use hvft_devices::console::Console;
use hvft_devices::disk::{Disk, DiskCommand, DiskLogEntry, DiskStatus, BLOCK_SIZE};
use hvft_devices::mmio;
use hvft_hypervisor::hvguest::{HvEvent, HvGuest, HvStats};
use hvft_isa::program::Program;
use hvft_machine::mem::IO_BASE;
use hvft_machine::trap::irq;
use hvft_net::channel::Channel;
use hvft_net::detector::FailureDetector;
use hvft_sim::time::{SimDuration, SimTime};
use hvft_sim::trace::{TraceCategory, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// How a host's run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunEnd {
    /// The workload called `SYS_EXIT`.
    Exit {
        /// The code (checksum) passed by the guest.
        code: u32,
    },
    /// The guest halted without an exit diagnostic (kernel fatal path).
    Fatal {
        /// Fatal code from the kernel, if any was diagnosed.
        code: Option<u32>,
    },
    /// The per-guest instruction limit tripped.
    InsnLimit,
}

/// An I/O the new protocol is holding until acknowledgments complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PendingIo {
    DiskGo { cmd_value: u32 },
    ConsoleTx { byte: u8 },
}

/// Host protocol state.
#[derive(Clone, PartialEq, Eq, Debug)]
enum HostState {
    /// Executing guest instructions.
    Running,
    /// Primary, original protocol: at the boundary of `epoch`, awaiting
    /// acknowledgments (rule P2).
    AwaitingAcksBoundary { epoch: u64 },
    /// Primary, revised protocol: acknowledgments must complete before
    /// this I/O proceeds (§4.3).
    AwaitingAcksIo { io: PendingIo },
    /// Backup at the boundary of `epoch`, awaiting `[Tme_p]` (rule P5).
    AwaitingTime { epoch: u64 },
    /// Backup, clock assigned, awaiting `[end, epoch]` (rule P5).
    AwaitingEnd { epoch: u64 },
    /// Finished.
    Done(RunEnd),
    /// The backup's guest finished the workload while still unpromoted
    /// (its exit was suppressed); it waits to learn whether the primary
    /// finished too or failed first.
    BackupDone(RunEnd),
    /// Failstopped.
    Dead,
}

/// An operation issued by the guest and not yet completed+delivered.
#[derive(Clone, Debug)]
struct InflightIo {
    cmd: DiskCommand,
    dma_addr: u32,
    /// Snapshot of the buffer for writes (captured at GO).
    write_data: Option<Vec<u8>>,
    issued_at: SimTime,
}

/// One replica's host: guest + hypervisor + protocol endpoint state.
struct Host {
    guest: HvGuest,
    now: SimTime,
    /// `guest.elapsed()` already folded into `now`.
    synced_elapsed: SimDuration,
    state: HostState,
    is_primary: bool,
    promoted: bool,
    // Messaging.
    next_seq: u64,
    acked_upto: u64,
    highest_recv: u64,
    // Interrupt buffering (rule P1/P4), keyed by delivery epoch.
    buffered: BTreeMap<u64, Vec<ForwardedInterrupt>>,
    // Backup bookkeeping for P5.
    got_time: BTreeMap<u64, hvft_hypervisor::vclock::VClock>,
    got_end: BTreeSet<u64>,
    // Guest-visible device shadows (updated only at delivery points so
    // both replicas read identical values).
    reg_block: u32,
    reg_addr: u32,
    disk_status_reg: u32,
    inflight: Option<InflightIo>,
    // Results.
    diags: Vec<(u32, u32)>,
    op_latencies: Vec<SimDuration>,
}

impl Host {
    fn new(guest: HvGuest, is_primary: bool) -> Self {
        Host {
            guest,
            now: SimTime::ZERO,
            synced_elapsed: SimDuration::ZERO,
            state: HostState::Running,
            is_primary,
            promoted: false,
            next_seq: 0,
            acked_upto: 0,
            highest_recv: 0,
            buffered: BTreeMap::new(),
            got_time: BTreeMap::new(),
            got_end: BTreeSet::new(),
            reg_block: 0,
            reg_addr: 0,
            disk_status_reg: mmio::disk_status::IDLE,
            inflight: None,
            diags: Vec::new(),
            op_latencies: Vec::new(),
        }
    }

    /// Folds freshly accumulated guest time into the host clock.
    fn sync_clock(&mut self) {
        let e = self.guest.elapsed();
        self.now += e - self.synced_elapsed;
        self.synced_elapsed = e;
    }

    /// Charges hypervisor work and advances the host clock.
    fn charge(&mut self, d: SimDuration) {
        self.guest.charge(d);
        self.sync_clock();
    }

    fn runnable(&self) -> bool {
        self.state == HostState::Running
    }

    fn waiting_as_backup(&self) -> bool {
        matches!(
            self.state,
            HostState::AwaitingTime { .. }
                | HostState::AwaitingEnd { .. }
                | HostState::BackupDone(_)
        )
    }

    fn all_acked(&self) -> bool {
        self.acked_upto >= self.next_seq
    }
}

/// Information about a completed failover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverInfo {
    /// When the backup promoted itself.
    pub at: SimTime,
    /// The failover epoch (rule P6's `E`).
    pub epoch: u64,
    /// Whether rule P7 synthesized an uncertain interrupt.
    pub uncertain_synthesized: bool,
}

/// The outcome of a system run.
#[derive(Clone, Debug)]
pub struct FtRunResult {
    /// How the acting primary's workload ended.
    pub outcome: RunEnd,
    /// Completion time on the acting primary's clock — the `N′` of the
    /// paper's normalized performance.
    pub completion_time: SimDuration,
    /// Failover details if the primary failstopped.
    pub failover: Option<FailoverInfo>,
    /// Epoch-boundary state-hash comparison results.
    pub lockstep: LockstepChecker,
    /// Bytes the environment's console received, in order.
    pub console_output: Vec<u8>,
    /// Hosts that wrote to the console, in order of first write.
    pub console_hosts: Vec<u8>,
    /// The disk's environment-visible operation log.
    pub disk_log: Vec<DiskLogEntry>,
    /// Acting primary's hypervisor statistics.
    pub primary_stats: HvStats,
    /// Original backup's hypervisor statistics.
    pub backup_stats: HvStats,
    /// Guest-visible latency of each completed disk operation at the
    /// acting primary (GO to interrupt delivery).
    pub op_latencies: Vec<SimDuration>,
    /// Driver retries recorded by the guest kernel (uncertain outcomes).
    pub guest_retries: u32,
    /// Messages the primary sent / the backup sent.
    pub messages_sent: (u64, u64),
}

/// The complete §3 prototype: two processors, shared disk, console, LAN.
pub struct FtSystem {
    hosts: [Host; 2],
    /// `chans[i]` carries messages *from* host `i`.
    chans: [Channel<Message>; 2],
    disk: Disk,
    console: Console,
    detector: FailureDetector,
    cfg: FtConfig,
    /// Pending disk completion per host: `(time, op ready)`.
    disk_done: [Option<SimTime>; 2],
    fail_at: Option<SimTime>,
    failover: Option<FailoverInfo>,
    lockstep: LockstepChecker,
    /// Index of the host currently acting as primary.
    acting_primary: usize,
    tracer: Tracer,
}

impl FtSystem {
    /// Builds the system: both replicas boot the identical image in the
    /// identical state, as §2.1 requires.
    pub fn new(image: &Program, cfg: FtConfig) -> Self {
        let mut hv0 = cfg.hv;
        hv0.tlb_seed = cfg.seed.wrapping_add(101);
        let mut hv1 = cfg.hv;
        // Deliberately different machine-level TLB seed: the paper's
        // point is that replica coordination must survive hardware
        // non-determinism that is invisible to the VM state.
        hv1.tlb_seed = cfg.seed.wrapping_add(202);
        let g0 = HvGuest::new(image, cfg.cost, hv0);
        let g1 = HvGuest::new(image, cfg.cost, hv1);
        let mut disk = Disk::new(cfg.disk_blocks, cfg.seed);
        disk.set_fault_probability(cfg.disk_fault_prob);
        let fail_at = match cfg.failure {
            FailureSpec::None => None,
            FailureSpec::At(t) => Some(t),
        };
        FtSystem {
            hosts: [Host::new(g0, true), Host::new(g1, false)],
            chans: [
                Channel::new(cfg.link, cfg.seed ^ 0xA),
                Channel::new(cfg.link, cfg.seed ^ 0xB),
            ],
            disk,
            console: Console::new(),
            detector: FailureDetector::new(cfg.detector_timeout),
            cfg,
            disk_done: [None, None],
            fail_at,
            failover: None,
            lockstep: LockstepChecker::new(),
            acting_primary: 0,
            tracer: Tracer::new(4096),
        }
    }

    /// Access to the protocol-event tracer (disabled by default; enable
    /// with [`Tracer::set_enabled`] before [`FtSystem::run`]). Records
    /// failure injection, failover/promotion, P7 synthesis, and lockstep
    /// divergence — the low-frequency events worth a timeline.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Shared-disk access for test setup (pre-filling blocks).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Reads a word of a host's guest memory (test inspection).
    pub fn guest_mem_u32(&self, host: usize, paddr: u32) -> u32 {
        self.hosts[host].guest.mem.read_u32(paddr).unwrap_or(0)
    }

    // -----------------------------------------------------------------
    // Messaging
    // -----------------------------------------------------------------

    fn send(&mut self, from: usize, mut msg: Message) {
        let to = 1 - from;
        let host = &mut self.hosts[from];
        // Stamp the sequence number.
        match &mut msg {
            Message::Interrupt { seq, .. }
            | Message::Time { seq, .. }
            | Message::EpochEnd { seq, .. } => {
                host.next_seq += 1;
                *seq = host.next_seq;
            }
            Message::Ack { .. } => {}
        }
        let bytes = msg.wire_bytes();
        let now = host.now;
        let _ = self.chans[from].send(now, bytes, msg);
        let _ = to;
    }

    fn deliver(&mut self, to: usize, at: SimTime, msg: Message) {
        let host = &mut self.hosts[to];
        host.now = host.now.max(at);
        host.charge(self.cfg.cost.hv_msg_recv);
        if to == 1 {
            self.detector.heard(at);
        }
        match msg {
            Message::Ack { upto } => {
                host.acked_upto = host.acked_upto.max(upto);
                self.try_resume_primary(to);
            }
            Message::Interrupt {
                seq,
                epoch,
                interrupt,
            } => {
                self.hosts[to]
                    .buffered
                    .entry(epoch)
                    .or_default()
                    .push(interrupt);
                self.ack(to, seq);
                self.try_advance_backup(to);
            }
            Message::Time { seq, epoch, vclock } => {
                self.hosts[to].got_time.insert(epoch, vclock);
                self.ack(to, seq);
                self.try_advance_backup(to);
            }
            Message::EpochEnd { seq, epoch } => {
                self.hosts[to].got_end.insert(epoch);
                self.ack(to, seq);
                self.try_advance_backup(to);
            }
        }
    }

    fn ack(&mut self, host: usize, seq: u64) {
        self.hosts[host].highest_recv = self.hosts[host].highest_recv.max(seq);
        let upto = self.hosts[host].highest_recv;
        self.send(host, Message::Ack { upto });
    }

    fn peer_alive(&self, of: usize) -> bool {
        self.hosts[1 - of].state != HostState::Dead
            && !matches!(self.hosts[1 - of].state, HostState::Done(_))
    }

    // -----------------------------------------------------------------
    // Primary-side protocol
    // -----------------------------------------------------------------

    /// The epoch tag for an interrupt received now (P1's `E`): interrupts
    /// arriving while boundary processing for `E` is under way belong to
    /// `E + 1`.
    fn interrupt_epoch(&self, host: usize) -> u64 {
        let h = &self.hosts[host];
        match h.state {
            HostState::AwaitingAcksBoundary { epoch } => epoch + 1,
            _ => h.guest.epoch(),
        }
    }

    /// Rule P2, first half: boundary reached at the primary.
    fn primary_epoch_end(&mut self, i: usize) {
        let epoch = self.hosts[i].guest.epoch();
        if self.cfg.lockstep_check {
            let hash = self.hosts[i].guest.state_hash();
            self.lockstep
                .record(if i == self.acting_primary { 0 } else { 1 }, epoch, hash);
            if let Some(d) = self.lockstep.divergences().last() {
                if d.epoch == epoch {
                    self.tracer.emit(
                        self.hosts[i].now,
                        TraceCategory::Protocol,
                        Some(i as u8),
                        format!("LOCKSTEP DIVERGENCE at epoch {epoch}"),
                    );
                }
            }
        }
        self.hosts[i].charge(self.cfg.cost.hv_epoch_cpu);
        if self.peer_alive(i) {
            let vclock = self.hosts[i].guest.vclock.snapshot();
            self.send(
                i,
                Message::Time {
                    seq: 0,
                    epoch,
                    vclock,
                },
            );
            if self.cfg.protocol == ProtocolVariant::Old && !self.hosts[i].all_acked() {
                self.hosts[i].state = HostState::AwaitingAcksBoundary { epoch };
                return;
            }
        }
        self.finish_primary_boundary(i, epoch);
    }

    /// Rule P2, second half: deliver, announce, start the next epoch.
    fn finish_primary_boundary(&mut self, i: usize, epoch: u64) {
        self.deliver_boundary_interrupts(i, epoch);
        if self.peer_alive(i) {
            self.send(i, Message::EpochEnd { seq: 0, epoch });
        }
        self.hosts[i].guest.begin_epoch();
        self.hosts[i].state = HostState::Running;
    }

    /// Resumes a primary stalled on acknowledgments, if they are in.
    fn try_resume_primary(&mut self, i: usize) {
        if !self.hosts[i].all_acked() {
            return;
        }
        match self.hosts[i].state.clone() {
            HostState::AwaitingAcksBoundary { epoch } => {
                self.finish_primary_boundary(i, epoch);
            }
            HostState::AwaitingAcksIo { io } => {
                self.hosts[i].state = HostState::Running;
                self.perform_io(i, io);
                self.hosts[i].guest.finish_mmio_write();
                self.hosts[i].sync_clock();
            }
            _ => {}
        }
    }

    /// Delivers everything buffered for `epoch`, plus interval-timer
    /// expiry "based on Tme" — identical logic at both replicas.
    fn deliver_boundary_interrupts(&mut self, i: usize, epoch: u64) {
        let retired = self.hosts[i].guest.cpu.retired();
        if self.hosts[i].guest.vclock.take_expired_timer(retired) {
            self.hosts[i].guest.assert_irq(irq::TIMER);
        }
        let list = self.hosts[i].buffered.remove(&epoch).unwrap_or_default();
        for fwd in list {
            self.apply_interrupt(i, fwd);
        }
    }

    fn apply_interrupt(&mut self, i: usize, fwd: ForwardedInterrupt) {
        let host = &mut self.hosts[i];
        host.guest.assert_irq(fwd.irq_bits);
        if let Some(dc) = fwd.disk {
            host.disk_status_reg = dc.status;
            if let Some(inflight) = host.inflight.take() {
                if let Some(data) = &dc.data {
                    host.guest.mem.write_bytes(inflight.dma_addr, data);
                }
                host.op_latencies.push(host.now - inflight.issued_at);
            } else if let Some(data) = &dc.data {
                // Delivery with no recorded GO can only mean a protocol
                // bug; keep the memory effect anyway for debuggability.
                host.guest.mem.write_bytes(host.reg_addr, data);
            }
        }
    }

    /// Carries out a (possibly deferred) externally visible I/O at the
    /// acting primary.
    fn perform_io(&mut self, i: usize, io: PendingIo) {
        match io {
            PendingIo::DiskGo { cmd_value } => self.disk_go(i, cmd_value),
            PendingIo::ConsoleTx { byte } => {
                let now = self.hosts[i].now;
                self.console.write(now, i as u8, byte);
            }
        }
    }

    fn disk_go(&mut self, i: usize, cmd_value: u32) {
        let cmd = match cmd_value {
            mmio::disk_cmd::READ => DiskCommand::Read,
            mmio::disk_cmd::WRITE => DiskCommand::Write,
            _ => return,
        };
        let (block, addr, now) = (
            self.hosts[i].reg_block,
            self.hosts[i].reg_addr,
            self.hosts[i].now,
        );
        let write_data = match cmd {
            DiskCommand::Write => Some(
                self.hosts[i]
                    .guest
                    .mem
                    .read_bytes(addr, BLOCK_SIZE)
                    .to_vec(),
            ),
            DiskCommand::Read => None,
        };
        match self.disk.submit(now, i as u8, cmd, block) {
            Ok(dur) => {
                self.disk_done[i] = Some(now + dur);
                self.hosts[i].inflight = Some(InflightIo {
                    cmd,
                    dma_addr: addr,
                    write_data,
                    issued_at: now,
                });
            }
            Err(_) => {
                // Controller rejected (bad block / busy): surface as an
                // immediate uncertain completion through the normal
                // buffered path so both replicas see it identically.
                let epoch = self.interrupt_epoch(i);
                let fwd = ForwardedInterrupt {
                    irq_bits: irq::DISK,
                    disk: Some(DiskCompletion {
                        status: mmio::disk_status::UNCERTAIN,
                        data: None,
                    }),
                };
                self.hosts[i].inflight = Some(InflightIo {
                    cmd,
                    dma_addr: addr,
                    write_data,
                    issued_at: now,
                });
                self.hosts[i]
                    .buffered
                    .entry(epoch)
                    .or_default()
                    .push(fwd.clone());
                if self.peer_alive(i) {
                    self.send(
                        i,
                        Message::Interrupt {
                            seq: 0,
                            epoch,
                            interrupt: fwd,
                        },
                    );
                }
            }
        }
    }

    /// Rule P1: device completion arrives at the acting primary.
    fn disk_completion(&mut self, i: usize) {
        self.hosts[i].charge(self.cfg.cost.hv_entry_exit);
        let cmd = self.hosts[i]
            .inflight
            .as_ref()
            .map(|io| io.cmd)
            .expect("completion without GO");
        debug_assert_eq!(self.disk.pending().map(|p| p.cmd), Some(cmd));
        let (status, data) = match cmd {
            DiskCommand::Write => {
                let data = self.hosts[i]
                    .inflight
                    .as_ref()
                    .and_then(|io| io.write_data.clone())
                    .expect("write completion without captured data");
                (self.disk.complete_write(&data), None)
            }
            DiskCommand::Read => {
                let (s, d) = self.disk.complete_read();
                (s, d)
            }
        };
        let status_reg = match status {
            DiskStatus::Complete => mmio::disk_status::DONE,
            DiskStatus::Uncertain => mmio::disk_status::UNCERTAIN,
        };
        let fwd = ForwardedInterrupt {
            irq_bits: irq::DISK,
            disk: Some(DiskCompletion {
                status: status_reg,
                data,
            }),
        };
        let epoch = self.interrupt_epoch(i);
        self.hosts[i]
            .buffered
            .entry(epoch)
            .or_default()
            .push(fwd.clone());
        if self.peer_alive(i) {
            self.send(
                i,
                Message::Interrupt {
                    seq: 0,
                    epoch,
                    interrupt: fwd,
                },
            );
        }
    }

    // -----------------------------------------------------------------
    // Backup-side protocol
    // -----------------------------------------------------------------

    fn backup_epoch_end(&mut self, i: usize) {
        let epoch = self.hosts[i].guest.epoch();
        if self.cfg.lockstep_check {
            let hash = self.hosts[i].guest.state_hash();
            self.lockstep.record(1, epoch, hash);
        }
        self.hosts[i].charge(self.cfg.cost.hv_epoch_cpu);
        self.hosts[i].state = HostState::AwaitingTime { epoch };
        self.try_advance_backup(i);
    }

    /// Rule P5's waiting sequence, re-evaluated whenever a message lands.
    fn try_advance_backup(&mut self, i: usize) {
        loop {
            match self.hosts[i].state.clone() {
                HostState::AwaitingTime { epoch } => {
                    if let Some(vc) = self.hosts[i].got_time.remove(&epoch) {
                        self.hosts[i].guest.vclock.assign(vc);
                        self.hosts[i].state = HostState::AwaitingEnd { epoch };
                    } else {
                        return;
                    }
                }
                HostState::AwaitingEnd { epoch } if self.hosts[i].got_end.remove(&epoch) => {
                    self.deliver_boundary_interrupts(i, epoch);
                    self.hosts[i].guest.begin_epoch();
                    self.hosts[i].state = HostState::Running;
                    return;
                }
                _ => return,
            }
        }
    }

    /// Rules P6 + P7: the failure detector fired while the backup was
    /// waiting at the end of epoch `E`.
    fn failover(&mut self, i: usize, at: SimTime) {
        if let HostState::BackupDone(end) = self.hosts[i].state {
            // The backup's guest already finished the whole workload; the
            // primary's failure makes that (suppressed) completion real.
            self.hosts[i].is_primary = true;
            self.hosts[i].promoted = true;
            self.acting_primary = i;
            self.hosts[i].now = self.hosts[i].now.max(at);
            self.failover = Some(FailoverInfo {
                at: self.hosts[i].now,
                epoch: self.hosts[i].guest.epoch(),
                uncertain_synthesized: false,
            });
            self.hosts[i].state = HostState::Done(end);
            return;
        }
        let epoch = match self.hosts[i].state {
            HostState::AwaitingTime { epoch } | HostState::AwaitingEnd { epoch } => epoch,
            _ => unreachable!("failover outside a waiting state"),
        };
        self.hosts[i].now = self.hosts[i].now.max(at);
        // P6: deliver everything buffered — the primary is gone, so there
        // is no replica left to stay in step with, and holding epoch-
        // tagged completions any longer would only delay the driver.
        let epochs: Vec<u64> = self.hosts[i].buffered.keys().copied().collect();
        self.deliver_boundary_interrupts(i, epoch);
        for e in epochs {
            if e != epoch {
                let list = self.hosts[i].buffered.remove(&e).unwrap_or_default();
                for fwd in list {
                    self.apply_interrupt(i, fwd);
                }
            }
        }
        // P7: outstanding I/O gets an uncertain interrupt; the driver
        // will retry, which the environment cannot distinguish from a
        // transient device fault.
        let mut synthesized = false;
        if let Some(inflight) = self.hosts[i].inflight.take() {
            self.hosts[i].disk_status_reg = mmio::disk_status::UNCERTAIN;
            self.hosts[i].guest.assert_irq(irq::DISK);
            self.hosts[i]
                .op_latencies
                .push(self.hosts[i].now - inflight.issued_at);
            synthesized = true;
        }
        // Promotion.
        self.hosts[i].is_primary = true;
        self.hosts[i].promoted = true;
        self.acting_primary = i;
        self.tracer.emit(
            self.hosts[i].now,
            TraceCategory::Failure,
            Some(i as u8),
            format!(
                "P6: backup promoted at end of epoch {epoch}{}",
                if synthesized {
                    "; P7 synthesized an uncertain interrupt"
                } else {
                    ""
                }
            ),
        );
        self.failover = Some(FailoverInfo {
            at: self.hosts[i].now,
            epoch,
            uncertain_synthesized: synthesized,
        });
        self.hosts[i].guest.begin_epoch();
        self.hosts[i].state = HostState::Running;
    }

    // -----------------------------------------------------------------
    // MMIO handling
    // -----------------------------------------------------------------

    fn handle_mmio_read(&mut self, i: usize, paddr: u32) {
        let off = paddr.wrapping_sub(IO_BASE);
        let value = match off {
            mmio::DISK_REG_STATUS => self.hosts[i].disk_status_reg,
            mmio::DISK_REG_BLOCK => self.hosts[i].reg_block,
            mmio::DISK_REG_ADDR => self.hosts[i].reg_addr,
            mmio::CONSOLE_REG_STATUS => 1,
            _ => 0,
        };
        self.hosts[i].guest.finish_mmio_read(value);
        self.hosts[i].sync_clock();
    }

    fn handle_mmio_write(&mut self, i: usize, paddr: u32, value: u32) {
        let off = paddr.wrapping_sub(IO_BASE);
        let is_primary = self.hosts[i].is_primary;
        match off {
            mmio::DISK_REG_BLOCK => self.hosts[i].reg_block = value,
            mmio::DISK_REG_ADDR => self.hosts[i].reg_addr = value,
            mmio::DISK_REG_CMD => {
                if is_primary {
                    let io = PendingIo::DiskGo { cmd_value: value };
                    if self.must_await_acks_for_io(i) {
                        self.hosts[i].state = HostState::AwaitingAcksIo { io };
                        return; // MMIO completes after the acks arrive.
                    }
                    self.perform_io(i, io);
                } else {
                    // Case (i) of §2.2: backup I/O is suppressed; record
                    // the attempt for P7's outstanding-I/O bookkeeping.
                    let cmd = match value {
                        mmio::disk_cmd::READ => Some(DiskCommand::Read),
                        mmio::disk_cmd::WRITE => Some(DiskCommand::Write),
                        _ => None,
                    };
                    if let Some(cmd) = cmd {
                        let h = &mut self.hosts[i];
                        h.inflight = Some(InflightIo {
                            cmd,
                            dma_addr: h.reg_addr,
                            write_data: None,
                            issued_at: h.now,
                        });
                    }
                }
            }
            mmio::CONSOLE_REG_TX if is_primary => {
                let io = PendingIo::ConsoleTx { byte: value as u8 };
                if self.must_await_acks_for_io(i) {
                    self.hosts[i].state = HostState::AwaitingAcksIo { io };
                    return;
                }
                self.perform_io(i, io);
            }
            // Backup console output is suppressed entirely.
            _ => {}
        }
        self.hosts[i].guest.finish_mmio_write();
        self.hosts[i].sync_clock();
    }

    /// §4.3: under the revised protocol, I/O may not start until all
    /// coordination messages have been acknowledged.
    fn must_await_acks_for_io(&self, i: usize) -> bool {
        self.cfg.protocol == ProtocolVariant::New
            && self.peer_alive(i)
            && !self.hosts[i].all_acked()
    }

    // -----------------------------------------------------------------
    // Failure injection
    // -----------------------------------------------------------------

    fn inject_failure(&mut self, at: SimTime) {
        self.fail_at = None;
        let victim = 0;
        if matches!(
            self.hosts[victim].state,
            HostState::Done(_) | HostState::Dead
        ) {
            return;
        }
        self.hosts[victim].now = self.hosts[victim].now.max(at);
        self.hosts[victim].state = HostState::Dead;
        self.tracer.emit(
            at,
            TraceCategory::Failure,
            Some(victim as u8),
            "primary processor failstopped".to_owned(),
        );
        // In-flight messages still arrive (the backup "detects the
        // primary's failure only after receiving the last message sent"),
        // but nothing further leaves the dead processor.
        self.chans[victim].sever();
        self.chans[1 - victim].sever();
        // A disk operation in flight from the dead host is abandoned:
        // the medium may or may not have absorbed it, and no interrupt
        // will ever be delivered for it — the §2.2 two-generals corner.
        if self.disk_done[victim].take().is_some() {
            let data = self.hosts[victim]
                .inflight
                .as_ref()
                .and_then(|io| io.write_data.clone());
            self.disk.abandon(data.as_deref());
        }
    }

    // -----------------------------------------------------------------
    // The conservative co-simulation loop
    // -----------------------------------------------------------------

    /// Handles one guest-level event from host `i`'s hypervisor.
    fn dispatch_guest_event(&mut self, i: usize, ev: HvEvent) {
        match ev {
            HvEvent::BudgetExhausted => {}
            HvEvent::EpochEnd => {
                if self.hosts[i].is_primary {
                    self.primary_epoch_end(i);
                } else {
                    self.backup_epoch_end(i);
                }
            }
            HvEvent::MmioRead { paddr } => self.handle_mmio_read(i, paddr),
            HvEvent::MmioWrite { paddr, value } => self.handle_mmio_write(i, paddr, value),
            HvEvent::Diag { value, code } => {
                self.hosts[i].diags.push((value, code));
                let end = if code == hvft_guest::layout::diag::EXIT {
                    Some(RunEnd::Exit { code: value })
                } else if code == hvft_guest::layout::diag::FATAL {
                    Some(RunEnd::Fatal { code: Some(value) })
                } else {
                    None
                };
                if let Some(end) = end {
                    self.finish_host(i, end);
                }
            }
            HvEvent::Halted => {
                let code = self.hosts[i]
                    .diags
                    .iter()
                    .rev()
                    .find(|(_, c)| *c == hvft_guest::layout::diag::EXIT)
                    .map(|(v, _)| *v);
                let end = match code {
                    Some(c) => RunEnd::Exit { code: c },
                    None => RunEnd::Fatal { code: None },
                };
                self.finish_host(i, end);
            }
            HvEvent::Idle => {
                // Our guests spin rather than idle; treat as a fatal
                // condition so tests catch unexpected kernels.
                self.finish_host(i, RunEnd::Fatal { code: None });
            }
        }
    }

    /// Marks a host's workload as finished. At the primary this ends the
    /// run; at an unpromoted backup the (suppressed) exit parks the host
    /// until it learns the primary's fate.
    fn finish_host(&mut self, i: usize, end: RunEnd) {
        if self.hosts[i].is_primary {
            self.hosts[i].state = HostState::Done(end);
        } else {
            self.hosts[i].state = HostState::BackupDone(end);
        }
    }

    /// Earliest pending event time across the whole system.
    fn next_event_time(&mut self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut consider = |c: Option<SimTime>| {
            if let Some(ct) = c {
                t = Some(match t {
                    Some(cur) => cur.min(ct),
                    None => ct,
                });
            }
        };
        consider(self.chans[0].next_delivery());
        consider(self.chans[1].next_delivery());
        consider(self.disk_done[0]);
        consider(self.disk_done[1]);
        consider(self.fail_at);
        if self.hosts[1].waiting_as_backup() && self.peer_might_be_dead() {
            consider(Some(self.detector.deadline()));
        }
        t
    }

    fn peer_might_be_dead(&self) -> bool {
        // The detector only matters once the primary could be silent.
        true
    }

    /// Processes the single earliest event. Returns `false` if there was
    /// none.
    fn process_one_event(&mut self) -> bool {
        let Some(t) = self.next_event_time() else {
            return false;
        };
        // Identify which source fires at `t`; priority order is fixed for
        // determinism: failure, disk completions, channel 0, channel 1,
        // detector.
        if self.fail_at == Some(t) {
            self.inject_failure(t);
            return true;
        }
        for i in 0..2 {
            if self.disk_done[i] == Some(t) {
                self.disk_done[i] = None;
                self.hosts[i].now = self.hosts[i].now.max(t);
                self.disk_completion(i);
                return true;
            }
        }
        for from in 0..2 {
            if self.chans[from].next_delivery() == Some(t) {
                let msg = self.chans[from].pop_ready(t).expect("due message");
                self.deliver(1 - from, t, msg);
                return true;
            }
        }
        if self.hosts[1].waiting_as_backup() && self.detector.deadline() == t {
            if self.detector.expired(t) {
                self.failover(1, t);
            }
            return true;
        }
        false
    }

    /// Runs the system until the acting primary's workload completes.
    pub fn run(&mut self) -> FtRunResult {
        let lookahead = self.chans[0].lookahead();
        loop {
            // Completion check.
            if let HostState::Done(end) = self.hosts[self.acting_primary].state {
                return self.result(end);
            }
            // Instruction-limit guard.
            for i in 0..2 {
                if self.hosts[i].runnable()
                    && self.hosts[i].guest.cpu.retired() >= self.cfg.max_insns
                {
                    self.hosts[i].state = HostState::Done(RunEnd::InsnLimit);
                }
            }

            let ev_time = self.next_event_time();
            // Pick the runnable host with the smaller clock.
            let mut pick: Option<usize> = None;
            for i in 0..2 {
                if self.hosts[i].runnable()
                    && pick.is_none_or(|p| self.hosts[i].now < self.hosts[p].now)
                {
                    pick = Some(i);
                }
            }

            match (pick, ev_time) {
                (None, Some(_)) => {
                    // Nothing can run; advance by events.
                    if !self.process_one_event() {
                        return self.result(RunEnd::Fatal { code: None });
                    }
                }
                (None, None) => {
                    // Deadlock: nobody runnable, no events. This is a
                    // protocol bug or an ended run.
                    let end = match self.hosts[self.acting_primary].state {
                        HostState::Done(e) => e,
                        _ => RunEnd::Fatal { code: None },
                    };
                    return self.result(end);
                }
                (Some(i), ev) => {
                    // Events at (or within one instruction of) the
                    // host's clock go first — a budget smaller than one
                    // instruction cannot make progress.
                    if let Some(t) = ev {
                        if t <= self.hosts[i].now.saturating_add(self.cfg.cost.insn) {
                            self.process_one_event();
                            continue;
                        }
                    }
                    // Horizon: the earliest thing that could affect
                    // anyone, including messages the peer might send
                    // (conservative lookahead).
                    let mut horizon = ev.unwrap_or(SimTime::MAX);
                    let peer = 1 - i;
                    if self.hosts[peer].runnable() {
                        horizon = horizon.min(self.hosts[peer].now.saturating_add(lookahead));
                    }
                    let budget = if horizon == SimTime::MAX {
                        SimDuration::from_millis(10)
                    } else {
                        horizon - self.hosts[i].now
                    };
                    let event = self.hosts[i].guest.run(budget);
                    self.hosts[i].sync_clock();
                    self.dispatch_guest_event(i, event);
                }
            }
        }
    }

    fn result(&mut self, outcome: RunEnd) -> FtRunResult {
        let ap = self.acting_primary;
        let retries_addr = hvft_guest::layout::kdata::RETRIES;
        FtRunResult {
            outcome,
            completion_time: self.hosts[ap].now - SimTime::ZERO,
            failover: self.failover,
            lockstep: self.lockstep.clone(),
            console_output: self.console.output(),
            console_hosts: self.console.hosts_seen(),
            disk_log: self.disk.log().to_vec(),
            primary_stats: *self.hosts[ap].guest.stats(),
            backup_stats: *self.hosts[1].guest.stats(),
            op_latencies: {
                let mut v = self.hosts[0].op_latencies.clone();
                if ap == 1 {
                    v.extend_from_slice(&self.hosts[1].op_latencies);
                }
                v
            },
            guest_retries: self.hosts[ap].guest.mem.read_u32(retries_addr).unwrap_or(0),
            messages_sent: (self.chans[0].stats().sent, self.chans[1].stats().sent),
        }
    }
}
