//! Integration tests of the t-fault-tolerant DES: one primary plus
//! `t ≥ 2` ordered backups with real link timing, rank-scaled failure
//! detectors, and cascading failover. All runs are assembled through
//! the `Scenario` builder — the single front door since the legacy
//! constructors were removed.

use hvft_core::scenario::{ExitStatus, Protocol, Scenario, ScenarioBuilder};
use hvft_devices::disk::check_single_processor_consistency;
use hvft_guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft_isa::program::Program;
use hvft_sim::time::{SimDuration, SimTime};

fn fast(image: &Program, backups: usize) -> ScenarioBuilder {
    Scenario::builder()
        .image(image.clone())
        .functional_cost()
        .backups(backups)
        // Snappy detection so cascades fit inside millisecond-scale
        // functional-cost runs: a kill scheduled before the previous
        // promotion completes would hit an already-dead processor.
        .detector_timeout(SimDuration::from_micros(800))
}

/// Detection-latency headroom between scheduled kills: the rank-1
/// detector timeout plus slack for the promotion hand-over.
const DETECT_NS: u64 = 2_000_000;

fn cpu_image(iters: u32) -> Program {
    build_image(
        &KernelConfig {
            tick_period_us: 2000,
            tick_work: 3,
            ..KernelConfig::default()
        },
        &dhrystone_source(iters, 10),
    )
    .expect("image builds")
}

fn code_of(exit: ExitStatus) -> u32 {
    match exit {
        ExitStatus::Exit(code) => code,
        other => panic!("expected a clean exit, got {other:?}"),
    }
}

fn reference(image: &Program, backups: usize) -> (u32, u64) {
    let r = fast(image, backups).build().unwrap().run();
    (code_of(r.exit), r.completion_time.as_nanos())
}

#[test]
fn t2_failure_free_run_keeps_three_replicas_in_lockstep() {
    let image = cpu_image(800);
    let (code1, _) = reference(&image, 1);
    let r = fast(&image, 2).build().unwrap().run();
    assert_eq!(r.replica_stats.len(), 3);
    assert_eq!(code_of(r.exit), code1, "t must not change the checksum");
    assert!(r.lockstep_clean);
    // Three replicas hash every epoch: two comparisons per epoch.
    assert!(
        r.lockstep_compared > 2 * 2,
        "compared only {}",
        r.lockstep_compared
    );
    assert!(r.failovers.is_empty());
    // The primary broadcast to both backups; both acknowledged.
    assert!(r.messages_per_replica[1] > 0 && r.messages_per_replica[2] > 0);
}

#[test]
fn t2_cascading_failover_is_checksum_transparent() {
    let image = cpu_image(3000);
    for protocol in [Protocol::Old, Protocol::New] {
        // The variants complete in different simulated times, so each
        // needs its own failure-free baseline.
        let ref_r = fast(&image, 2).protocol(protocol).build().unwrap().run();
        let (ref_code, total_ns) = (code_of(ref_r.exit), ref_r.completion_time.as_nanos());
        // Kill the original primary at 1/3 of the failure-free run, and
        // the first backup after it has detected, promoted, and made
        // some progress of its own.
        let t1 = total_ns / 3;
        let t2 = t1 + DETECT_NS + total_ns / 4;
        let r = fast(&image, 2)
            .protocol(protocol)
            .fail_primary_at(SimTime::from_nanos(t1))
            .fail_primary_at(SimTime::from_nanos(t2))
            .build()
            .unwrap()
            .run();
        assert_eq!(
            r.failovers.len(),
            2,
            "{protocol:?}: two promotions expected, got {:?}",
            r.failovers
        );
        assert!(
            r.failovers[0].epoch <= r.failovers[1].epoch,
            "{protocol:?}: promotions must move forward in the stream"
        );
        assert_eq!(
            code_of(r.exit),
            ref_code,
            "{protocol:?}: the last survivor must produce the reference checksum"
        );
        assert!(
            r.lockstep_clean,
            "{protocol:?}: surviving replicas diverged"
        );
    }
}

#[test]
fn t3_survives_three_cascading_failures() {
    let image = cpu_image(3000);
    let (ref_code, total_ns) = reference(&image, 3);
    let t1 = total_ns / 4;
    let t2 = t1 + DETECT_NS + total_ns / 5;
    let t3 = t2 + DETECT_NS + total_ns / 5;
    let r = fast(&image, 3)
        .fail_primary_at(SimTime::from_nanos(t1))
        .fail_primary_at(SimTime::from_nanos(t2))
        .fail_primary_at(SimTime::from_nanos(t3))
        .build()
        .unwrap()
        .run();
    assert_eq!(r.failovers.len(), 3, "{:?}", r.failovers);
    assert_eq!(code_of(r.exit), ref_code);
    assert!(r.lockstep_clean);
}

#[test]
fn t2_disk_writes_survive_cascading_failover_consistently() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(6, IoMode::Write, 64, 7),
    )
    .unwrap();
    let (ref_code, total_ns) = reference(&image, 2);
    let t1 = total_ns / 3;
    let r = fast(&image, 2)
        .fail_primary_at(SimTime::from_nanos(t1))
        .fail_primary_at(SimTime::from_nanos(t1 + DETECT_NS + total_ns / 4))
        .build()
        .unwrap()
        .run();
    assert_eq!(code_of(r.exit), ref_code, "failovers: {:?}", r.failovers);
    // The environment saw a single-processor-consistent command stream
    // across both hand-overs, even with P7 retries.
    check_single_processor_consistency(&r.disk_log)
        .unwrap_or_else(|e| panic!("environment anomaly: {e}\nlog: {:#?}", r.disk_log));
    assert!(r.lockstep_clean);
}

#[test]
fn t2_cascade_sweep_never_breaks_transparency() {
    // Kill the acting primary twice at many different point pairs; every
    // run must end with the reference checksum. (Late second kills may
    // land after the survivor finished — then they are harmless no-ops,
    // which the checksum assertion still covers.)
    let image = cpu_image(1500);
    let (ref_code, total_ns) = reference(&image, 2);
    for k in 1..8 {
        let t1 = total_ns * k / 10;
        let t2 = t1 + DETECT_NS + total_ns / 5;
        let r = fast(&image, 2)
            .fail_primary_at(SimTime::from_nanos(t1.max(1)))
            .fail_primary_at(SimTime::from_nanos(t2.max(2)))
            .build()
            .unwrap()
            .run();
        assert_eq!(
            code_of(r.exit),
            ref_code,
            "kills at {t1}/{t2} ns: checksum mismatch ({:?})",
            r.failovers
        );
    }
}

#[test]
fn t2_console_output_hands_over_down_the_chain() {
    let msg = "abcdefghijklmnopqrstuvwxyz";
    let image = build_image(
        &KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
        &hello_source(msg, 3),
    )
    .unwrap();
    let (_, total_ns) = reference(&image, 2);
    let t1 = total_ns / 4;
    let r = fast(&image, 2)
        .fail_primary_at(SimTime::from_nanos(t1))
        .fail_primary_at(SimTime::from_nanos(t1 + DETECT_NS + total_ns / 4))
        .build()
        .unwrap()
        .run();
    assert_eq!(r.exit, ExitStatus::Exit(42));
    // Bytes form an in-order subsequence of the message (fire-and-forget
    // output may lose bytes in failover epochs, never reorder them), and
    // emitting hosts only ever move down the chain.
    let s = String::from_utf8_lossy(&r.console).into_owned();
    let mut it = msg.chars();
    assert!(
        s.chars().all(|c| it.any(|m| m == c)),
        "not a subsequence: {s:?}"
    );
    assert!(
        r.console_hosts.windows(2).all(|w| w[0] <= w[1]),
        "hand-over must be one-way: {:?}",
        r.console_hosts
    );
    assert!(r.console_hosts.len() <= 3);
}

#[test]
fn dead_primary_never_acts_on_late_acknowledgments() {
    // Regression: under the §4.3 protocol the primary may be killed
    // while holding an I/O in AwaitIoAcks with the acknowledgment
    // already in flight; the still-draining ack must not release the
    // dead host's held I/O (a post-mortem disk command would violate
    // single-processor consistency, a console byte would violate host
    // monotonicity). A dense kill sweep maximizes the odds of landing
    // inside a held-I/O window.
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(4, IoMode::Write, 32, 3),
    )
    .unwrap();
    let ref_r = fast(&image, 1)
        .protocol(Protocol::New)
        .build()
        .unwrap()
        .run();
    let (ref_code, total_ns) = (code_of(ref_r.exit), ref_r.completion_time.as_nanos());
    for k in 1..30 {
        let t = total_ns * k / 30;
        let r = fast(&image, 1)
            .protocol(Protocol::New)
            .fail_primary_at(SimTime::from_nanos(t.max(1)))
            .build()
            .unwrap()
            .run();
        assert_eq!(code_of(r.exit), ref_code, "kill at {t} ns");
        check_single_processor_consistency(&r.disk_log)
            .unwrap_or_else(|e| panic!("kill at {t} ns: {e}"));
        assert!(
            r.console_hosts.windows(2).all(|w| w[0] <= w[1]),
            "kill at {t} ns: console host went backwards: {:?}",
            r.console_hosts
        );
    }
}

#[test]
fn t2_backup_failstop_leaves_the_run_unharmed() {
    // Kill the *first backup* mid-run: the acting primary must remove
    // it from the acknowledgment set, carry on with the second backup,
    // and finish with the reference checksum — no failover at all.
    let image = cpu_image(1500);
    for protocol in [Protocol::Old, Protocol::New] {
        // Per-protocol reference: the §4.3 variant completes in a
        // different simulated time (and its backups legitimately trail
        // the primary, since boundaries do not wait for acks).
        let ref_r = fast(&image, 2).protocol(protocol).build().unwrap().run();
        let (ref_code, total_ns) = (code_of(ref_r.exit), ref_r.completion_time.as_nanos());
        let r = fast(&image, 2)
            .protocol(protocol)
            .fail_replica_at(SimTime::from_nanos(total_ns / 3), 1)
            .build()
            .unwrap()
            .run();
        assert_eq!(code_of(r.exit), ref_code, "{protocol:?}");
        assert!(
            r.failovers.is_empty(),
            "{protocol:?}: a backup death must not promote anyone: {:?}",
            r.failovers
        );
        assert!(r.lockstep_clean, "{protocol:?}");
        // The dead backup fell silent at the kill; the survivor kept
        // acknowledging to the end of the run.
        assert!(
            r.messages_per_replica[1] < r.messages_per_replica[2],
            "{protocol:?}: dead backup sent {} >= survivor's {}",
            r.messages_per_replica[1],
            r.messages_per_replica[2]
        );
    }
}

#[test]
fn t2_backup_failstop_sweep_is_checksum_transparent() {
    // A backup may die at any point — including inside an epoch-boundary
    // acknowledgment wait, where the primary is stalled on the dead
    // backup's ack and only remove_peer can resume it.
    let image = cpu_image(800);
    let (ref_code, total_ns) = reference(&image, 2);
    for k in 1..10 {
        let t = (total_ns * k / 10).max(1);
        let r = fast(&image, 2)
            .fail_replica_at(SimTime::from_nanos(t), 1)
            .build()
            .unwrap()
            .run();
        assert_eq!(code_of(r.exit), ref_code, "backup kill at {t} ns");
        assert!(r.failovers.is_empty(), "backup kill at {t} ns");
    }
}

#[test]
fn t1_backup_failstop_degenerates_to_an_unreplicated_run() {
    // With the only backup dead, the primary runs on alone (the paper's
    // system would re-integrate a new backup here; we assert the
    // degenerate mode completes and stops hashing comparisons).
    let image = cpu_image(800);
    let (ref_code, total_ns) = reference(&image, 1);
    let r = fast(&image, 1)
        .fail_replica_at(SimTime::from_nanos(total_ns / 2), 1)
        .build()
        .unwrap()
        .run();
    assert_eq!(code_of(r.exit), ref_code);
    assert!(r.failovers.is_empty());
}

#[test]
fn t2_backup_then_primary_failure_still_fails_over() {
    // Backup 1 dies, then the primary dies: backup 2 must detect,
    // promote, and finish — the chain order skips the dead replica.
    let image = cpu_image(3000);
    let (ref_code, total_ns) = reference(&image, 2);
    let t1 = total_ns / 4;
    let t2 = t1 + DETECT_NS + total_ns / 4;
    let r = fast(&image, 2)
        .fail_replica_at(SimTime::from_nanos(t1), 1)
        .fail_primary_at(SimTime::from_nanos(t2))
        .build()
        .unwrap()
        .run();
    assert_eq!(code_of(r.exit), ref_code, "failovers: {:?}", r.failovers);
    assert_eq!(
        r.failovers.len(),
        1,
        "exactly one promotion (backup 2): {:?}",
        r.failovers
    );
    assert!(r.lockstep_clean);
}

#[test]
fn killing_the_acting_primary_by_replica_id_is_a_primary_failure() {
    // fail_replica_at(.., 0) at a time when 0 is still primary must
    // behave exactly like a scheduled primary failure.
    let image = cpu_image(1500);
    let (ref_code, total_ns) = reference(&image, 1);
    let r = fast(&image, 1)
        .fail_replica_at(SimTime::from_nanos(total_ns / 2), 0)
        .build()
        .unwrap()
        .run();
    assert_eq!(code_of(r.exit), ref_code);
    assert_eq!(r.failovers.len(), 1, "{:?}", r.failovers);
}

#[test]
fn deep_chains_boot_and_finish() {
    // t = 5: six replicas over one coordination LAN still reach the
    // reference result (scalability smoke test for the mesh + detector
    // ranks).
    let image = cpu_image(150);
    let (ref_code, _) = reference(&image, 1);
    let r = fast(&image, 5).build().unwrap().run();
    assert_eq!(code_of(r.exit), ref_code);
    assert!(r.lockstep_clean);
    assert_eq!(r.replica_stats.len(), 6);
}
