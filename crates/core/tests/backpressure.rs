//! The bounded NIC-queue backpressure knob (§4.3 saturated regime).
//!
//! The revised (New) protocol streams epoch-boundary messages without
//! waiting for acknowledgments, so on a slow medium a spin-waiting
//! guest oversubscribes the wire without bound — the paper's NP model
//! makes the same infinite-buffer assumption. `nic_queue_bound` makes
//! that regime physical: the sender blocks once its outbound queueing
//! delay exceeds the bound. These tests pin the two properties that
//! matter: the bound changes *timing only* (guest-visible behaviour is
//! untouched), and an unengaged bound is a bit-exact no-op so Table 1
//! runs are unchanged.

use hvft_core::scenario::{ConfigError, Protocol, Scenario, ScenarioBuilder};
use hvft_guest::workload::Dhrystone;
use hvft_guest::KernelConfig;
use hvft_net::link::LinkSpec;
use hvft_sim::time::SimDuration;

/// A deliberately slow medium: at 1 Mbps every boundary message is
/// hundreds of microseconds of air time, so a functional-cost guest
/// saturates it immediately.
fn slow_link() -> LinkSpec {
    LinkSpec {
        bits_per_sec: 1_000_000,
        propagation: SimDuration::from_micros(25),
        per_message: SimDuration::from_micros(35),
        mtu: 1024,
    }
}

fn saturated(iters: u32) -> ScenarioBuilder {
    Scenario::builder()
        .workload(Dhrystone {
            iters,
            syscall_every: 0,
            kernel: KernelConfig {
                tick_period_us: 2000,
                tick_work: 2,
                ..KernelConfig::default()
            },
        })
        .functional_cost()
        .protocol(Protocol::New)
        .epoch_len(512)
        .link(slow_link())
}

#[test]
fn backpressure_changes_timing_but_not_behaviour() {
    let unbounded = saturated(400).build().unwrap().run();
    let bounded = saturated(400)
        .nic_queue_bound(SimDuration::from_millis(1))
        .build()
        .unwrap()
        .run();
    // Guest-visible behaviour is identical…
    assert_eq!(unbounded.exit, bounded.exit);
    assert_eq!(unbounded.console, bounded.console);
    assert!(unbounded.exit.is_clean_exit(), "{:?}", unbounded.exit);
    assert!(bounded.lockstep_clean);
    // …but the bounded sender was actually stalled by the full queue:
    // the streaming primary can no longer run arbitrarily ahead of the
    // saturated medium, so its completion clock moves.
    assert!(
        bounded.completion_time > unbounded.completion_time,
        "the bound never engaged: bounded {} vs unbounded {}",
        bounded.completion_time,
        unbounded.completion_time
    );
}

#[test]
fn unengaged_bound_is_a_bit_exact_noop() {
    // The §2 (Old) protocol waits for boundary acks, so its queue never
    // builds: a generous bound must never engage and the run must be
    // bit-identical to the unbounded one — which is why Table 1
    // reproductions are unaffected by the knob's existence.
    let base = || {
        Scenario::builder()
            .workload(Dhrystone {
                iters: 300,
                ..Default::default()
            })
            .functional_cost()
    };
    let plain = base().build().unwrap().run();
    let bounded = base()
        .nic_queue_bound(SimDuration::from_millis(10))
        .build()
        .unwrap()
        .run();
    assert_eq!(plain.exit, bounded.exit);
    assert_eq!(plain.completion_time, bounded.completion_time);
    assert_eq!(plain.messages_per_replica, bounded.messages_per_replica);
    assert_eq!(plain.console, bounded.console);
}

#[test]
fn nic_bound_needs_a_timed_network() {
    // Bare and chain runs have no timed coordination network to
    // backpressure; the builder must reject the combination.
    for build in [
        Scenario::builder()
            .workload(Dhrystone::default())
            .bare()
            .nic_queue_bound(SimDuration::from_millis(1))
            .build(),
        Scenario::builder()
            .workload(Dhrystone::default())
            .chain()
            .nic_queue_bound(SimDuration::from_millis(1))
            .build(),
    ] {
        assert!(
            matches!(build.unwrap_err(), ConfigError::DriverMismatch(_)),
            "nic_queue_bound must be replicated-only"
        );
    }
}
