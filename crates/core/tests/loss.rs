//! Integration tests for the §4.3 lossy-LAN mode: message loss plus
//! link-level retransmission must be invisible to the guest and the
//! environment.

// These tests deliberately drive the legacy constructors while the
// deprecated shims exist; the scenario layer has its own test suite.
#![allow(deprecated)]

use hvft_core::config::{FailureSpec, FtConfig};
use hvft_core::system::{FtSystem, RunEnd};
use hvft_guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft_hypervisor::cost::CostModel;
use hvft_isa::program::Program;
use hvft_sim::time::{SimDuration, SimTime};

fn base() -> FtConfig {
    FtConfig {
        cost: CostModel::functional(),
        ..FtConfig::default()
    }
}

fn lossy(p: f64) -> FtConfig {
    FtConfig {
        loss_prob: p,
        retransmit: Some(SimDuration::from_millis(5)),
        // Detection must dominate worst-case recovery: retransmission
        // bursts arrive at most 4 × 5 ms apart (backoff cap), so a
        // 300 ms timeout only fires after ~15 consecutive losses on
        // one link (p ≈ 0.2¹⁵ at the 20% loss rate probed here).
        detector_timeout: SimDuration::from_millis(300),
        ..base()
    }
}

/// Guest-visible behaviour of a run: what the environment can observe.
fn observable(image: &Program, cfg: FtConfig) -> (String, Vec<u8>, bool) {
    let mut sys = FtSystem::new(image, cfg);
    let r = sys.run();
    (
        format!("{:?}", r.outcome),
        r.console_output,
        r.lockstep.is_clean(),
    )
}

#[test]
fn cpu_run_is_loss_transparent() {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 3,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
    let clean = observable(&image, lossy(0.0));
    let lossy_run = observable(&image, lossy(0.2));
    assert_eq!(
        clean, lossy_run,
        "loss 0.2 + retransmission must be invisible"
    );
    assert!(clean.2, "lockstep hashes stay clean");
}

#[test]
fn io_run_is_loss_transparent() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(6, IoMode::Write, 32, 4),
    )
    .unwrap();
    assert_eq!(
        observable(&image, lossy(0.0)),
        observable(&image, lossy(0.2))
    );
}

#[test]
fn console_stream_is_loss_transparent() {
    let image = build_image(&KernelConfig::default(), &hello_source("lossy hello\n", 2)).unwrap();
    let (outcome, console, _) = observable(&image, lossy(0.25));
    assert_eq!(outcome, "Exit { code: 42 }");
    assert_eq!(console, b"lossy hello\n");
}

#[test]
fn loss_actually_drops_and_recovers() {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 3,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
    let mut sys = FtSystem::new(&image, lossy(0.2));
    let r = sys.run();
    assert!(matches!(r.outcome, RunEnd::Exit { .. }));
    assert!(
        r.frames_retransmitted > 0,
        "a 20% loss rate must trigger retransmissions"
    );
    assert!(
        r.frames_suppressed > 0,
        "retransmission must occasionally duplicate (lost acks)"
    );
    // And the lossless run of the same config retransmits nothing.
    let mut clean = FtSystem::new(&image, lossy(0.0));
    let rc = clean.run();
    assert_eq!(rc.frames_retransmitted, 0);
    assert_eq!(rc.frames_suppressed, 0);
}

#[test]
fn failover_under_loss_is_transparent() {
    // Kill the primary mid-run while the network is dropping messages:
    // the survivor must still produce the reference checksum.
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
    let reference = observable(&image, lossy(0.0));
    for backups in [1usize, 2] {
        let cfg = FtConfig {
            backups,
            failure: FailureSpec::At(SimTime::from_nanos(3_000_000)),
            ..lossy(0.2)
        };
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        assert_eq!(r.failovers.len(), 1, "t = {backups}");
        assert_eq!(
            format!("{:?}", r.outcome),
            reference.0,
            "t = {backups}: survivor must match the loss-free reference"
        );
        assert_eq!(r.console_output, reference.1, "t = {backups}");
    }
}

#[test]
#[should_panic(expected = "retransmission")]
fn loss_without_retransmission_is_rejected() {
    let image = build_image(&KernelConfig::default(), &hello_source("x", 1)).unwrap();
    let cfg = FtConfig {
        loss_prob: 0.1,
        ..base()
    };
    let _ = FtSystem::new(&image, cfg);
}
