//! Integration tests for the §4.3 lossy-LAN mode: message loss plus
//! link-level retransmission must be invisible to the guest and the
//! environment. All runs are assembled through the `Scenario` builder —
//! the single front door since the legacy constructors were removed.

use hvft_core::scenario::{ConfigError, ExitStatus, Scenario, ScenarioBuilder};
use hvft_guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft_isa::program::Program;
use hvft_sim::time::{SimDuration, SimTime};

fn base(image: &Program) -> ScenarioBuilder {
    Scenario::builder().image(image.clone()).functional_cost()
}

fn lossy(image: &Program, p: f64) -> ScenarioBuilder {
    base(image)
        .lossy(p)
        .retransmit(SimDuration::from_millis(5))
        // Detection must dominate worst-case recovery: retransmission
        // bursts arrive at most 4 × 5 ms apart (backoff cap), so a
        // 300 ms timeout only fires after ~15 consecutive losses on
        // one link (p ≈ 0.2¹⁵ at the 20% loss rate probed here).
        .detector_timeout(SimDuration::from_millis(300))
}

/// Guest-visible behaviour of a run: what the environment can observe.
fn observable(builder: ScenarioBuilder) -> (String, Vec<u8>, bool) {
    let r = builder.build().expect("valid scenario").run();
    (format!("{:?}", r.exit), r.console, r.lockstep_clean)
}

#[test]
fn cpu_run_is_loss_transparent() {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 3,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
    let clean = observable(lossy(&image, 0.0));
    let lossy_run = observable(lossy(&image, 0.2));
    assert_eq!(
        clean, lossy_run,
        "loss 0.2 + retransmission must be invisible"
    );
    assert!(clean.2, "lockstep hashes stay clean");
}

#[test]
fn io_run_is_loss_transparent() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(6, IoMode::Write, 32, 4),
    )
    .unwrap();
    assert_eq!(
        observable(lossy(&image, 0.0)),
        observable(lossy(&image, 0.2))
    );
}

#[test]
fn console_stream_is_loss_transparent() {
    let image = build_image(&KernelConfig::default(), &hello_source("lossy hello\n", 2)).unwrap();
    let r = lossy(&image, 0.25).build().unwrap().run();
    assert_eq!(r.exit, ExitStatus::Exit(42));
    assert_eq!(r.console, b"lossy hello\n");
}

#[test]
fn loss_actually_drops_and_recovers() {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 3,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
    let r = lossy(&image, 0.2).build().unwrap().run();
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
    assert!(
        r.frames_retransmitted > 0,
        "a 20% loss rate must trigger retransmissions"
    );
    assert!(
        r.frames_suppressed > 0,
        "retransmission must occasionally duplicate (lost acks)"
    );
    // And the lossless run of the same config retransmits nothing.
    let rc = lossy(&image, 0.0).build().unwrap().run();
    assert_eq!(rc.frames_retransmitted, 0);
    assert_eq!(rc.frames_suppressed, 0);
}

#[test]
fn failover_under_loss_is_transparent() {
    // Kill the primary mid-run while the network is dropping messages:
    // the survivor must still produce the reference checksum.
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
    let reference = observable(lossy(&image, 0.0));
    for backups in [1usize, 2] {
        let r = lossy(&image, 0.2)
            .backups(backups)
            .fail_primary_at(SimTime::from_nanos(3_000_000))
            .build()
            .unwrap()
            .run();
        assert_eq!(r.failovers.len(), 1, "t = {backups}");
        assert_eq!(
            format!("{:?}", r.exit),
            reference.0,
            "t = {backups}: survivor must match the loss-free reference"
        );
        assert_eq!(r.console, reference.1, "t = {backups}");
    }
}

#[test]
fn loss_without_retransmission_is_rejected() {
    let image = build_image(&KernelConfig::default(), &hello_source("x", 1)).unwrap();
    let err = base(&image).lossy(0.1).build().unwrap_err();
    assert_eq!(err, ConfigError::LossWithoutRetransmit);
}
