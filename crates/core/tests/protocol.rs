//! Integration tests of the replica-coordination protocols (P1–P7).
//! All runs are assembled through the `Scenario` builder — the single
//! front door since the legacy constructors were removed.

use hvft_core::scenario::{ExitStatus, Protocol, RunReport, Scenario, ScenarioBuilder};
use hvft_devices::disk::check_single_processor_consistency;
use hvft_guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft_isa::program::Program;
use hvft_sim::time::{SimDuration, SimTime};

/// Functional cost model keeps tests quick; protocol behaviour is
/// identical.
fn fast(image: &Program) -> ScenarioBuilder {
    Scenario::builder().image(image.clone()).functional_cost()
}

fn cpu_image(iters: u32) -> Program {
    build_image(
        &KernelConfig {
            tick_period_us: 2000,
            tick_work: 3,
            ..KernelConfig::default()
        },
        &dhrystone_source(iters, 10),
    )
    .expect("image builds")
}

fn io_image(ops: u32, mode: IoMode) -> Program {
    build_image(&KernelConfig::default(), &io_bench_source(ops, mode, 64, 7)).expect("image builds")
}

fn code_of(r: &RunReport) -> u32 {
    match r.exit {
        ExitStatus::Exit(code) => code,
        other => panic!("expected a clean exit, got {other:?}"),
    }
}

#[test]
fn cpu_workload_lockstep_is_clean() {
    let r = fast(&cpu_image(1200)).build().unwrap().run();
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
    assert!(r.lockstep_clean);
    assert!(
        r.lockstep_compared > 2,
        "compared only {} epochs",
        r.lockstep_compared
    );
    assert!(r.failovers.is_empty());
}

#[test]
fn ft_checksum_matches_bare_hardware() {
    // The same image must compute the identical checksum on bare
    // hardware and under replication — transparency in both directions.
    let image = cpu_image(200);
    let bare = Scenario::builder()
        .image(image.clone())
        .bare()
        .build()
        .unwrap()
        .run();
    let bare_code = code_of(&bare);
    let r = fast(&image).build().unwrap().run();
    assert_eq!(code_of(&r), bare_code, "FT checksum differs from bare");
}

#[test]
fn epoch_length_does_not_change_results() {
    let image = cpu_image(150);
    let mut codes = Vec::new();
    for epoch_len in [512, 1024, 4096, 16384] {
        let r = fast(&image).epoch_len(epoch_len).build().unwrap().run();
        assert!(r.lockstep_clean, "EL={epoch_len} diverged");
        codes.push(code_of(&r));
    }
    assert!(
        codes.windows(2).all(|w| w[0] == w[1]),
        "checksums vary with epoch length: {codes:?}"
    );
}

#[test]
fn disk_write_workload_under_replication() {
    let r = fast(&io_image(6, IoMode::Write)).build().unwrap().run();
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
    assert!(r.lockstep_clean);
    assert_eq!(r.disk_log.len(), 6);
    assert!(
        r.disk_log.iter().all(|e| e.host == 0),
        "only the primary touches the disk"
    );
    check_single_processor_consistency(&r.disk_log).expect("environment consistency");
    assert_eq!(r.op_latencies.len(), 6);
}

#[test]
fn disk_read_workload_under_replication() {
    let scenario = fast(&io_image(5, IoMode::Read)).build().unwrap();
    let mut runner = scenario.runner();
    // Pre-fill the shared medium so reads return observable data.
    let pattern: Vec<u8> = (0..hvft_devices::disk::BLOCK_SIZE)
        .map(|i| (i % 13) as u8)
        .collect();
    {
        let sys = runner.ft_mut().expect("replicated driver");
        for b in 0..64 {
            sys.disk_mut().poke_block(b, &pattern);
        }
    }
    let r = runner.run();
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
    assert!(r.lockstep_clean, "read data must reach both replicas");
    assert_eq!(r.disk_log.len(), 5);
}

#[test]
fn console_output_comes_from_primary_only() {
    let image = build_image(
        &KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
        &hello_source("ft says hi\n", 2),
    )
    .unwrap();
    let r = fast(&image).build().unwrap().run();
    assert_eq!(r.exit, ExitStatus::Exit(42));
    assert_eq!(String::from_utf8_lossy(&r.console), "ft says hi\n");
    assert_eq!(r.console_hosts, vec![0], "backup output must be suppressed");
}

#[test]
fn new_protocol_produces_identical_results() {
    let image = cpu_image(200);
    let run = |protocol| fast(&image).protocol(protocol).build().unwrap().run();
    let old = run(Protocol::Old);
    let new = run(Protocol::New);
    assert!(old.lockstep_clean && new.lockstep_clean);
    assert_eq!(code_of(&old), code_of(&new));
}

#[test]
fn new_protocol_is_faster_with_real_costs() {
    // Table 1's headline: dropping the boundary ack-wait helps,
    // most of all for CPU-intensive workloads.
    let image = cpu_image(400);
    let run = |protocol| {
        Scenario::builder()
            .image(image.clone())
            .protocol(protocol)
            .epoch_len(1024)
            .build()
            .unwrap()
            .run()
    };
    let old = run(Protocol::Old);
    let new = run(Protocol::New);
    assert!(
        new.completion_time < old.completion_time,
        "new {} should beat old {}",
        new.completion_time,
        old.completion_time
    );
}

#[test]
fn failover_mid_cpu_run_is_transparent() {
    let image = cpu_image(400);
    // Reference: failure-free run.
    let ref_r = fast(&image).build().unwrap().run();
    let ref_code = code_of(&ref_r);

    // Kill the primary mid-run.
    let r = fast(&image)
        .fail_primary_at(SimTime::from_nanos(ref_r.completion_time.as_nanos() / 2))
        .build()
        .unwrap()
        .run();
    let failover = *r.failovers.first().expect("failover must have happened");
    assert!(failover.at > SimTime::ZERO);
    assert_eq!(
        code_of(&r),
        ref_code,
        "promoted backup must produce the identical checksum"
    );
}

#[test]
fn failover_during_disk_write_retries_uncertainly() {
    let image = io_image(6, IoMode::Write);
    // Run once to learn the timing, then kill the primary in the middle
    // of the I/O phase.
    let probe = fast(&image).build().unwrap().run();
    let total = probe.completion_time;

    let r = fast(&image)
        .fail_primary_at(SimTime::from_nanos(total.as_nanos() / 2))
        .build()
        .unwrap()
        .run();
    assert!(!r.failovers.is_empty(), "no failover: {:?}", r.exit);
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
    // The environment saw a single-processor-consistent sequence even if
    // commands were repeated after the uncertain interrupt.
    check_single_processor_consistency(&r.disk_log)
        .unwrap_or_else(|e| panic!("environment saw an anomaly: {e}\nlog: {:#?}", r.disk_log));
    // All six logical writes completed from the guest's point of view.
    assert_eq!(code_of(&r), code_of(&probe));
}

#[test]
fn failover_sweep_never_breaks_consistency() {
    // Kill the primary at many different points; every run must end with
    // the reference checksum and a legal environment log.
    let image = io_image(3, IoMode::Write);
    let probe = fast(&image).build().unwrap().run();
    let total_ns = probe.completion_time.as_nanos();
    let ref_code = code_of(&probe);

    for k in 1..10 {
        let t = total_ns * k / 10;
        let r = fast(&image)
            .fail_primary_at(SimTime::from_nanos(t))
            .build()
            .unwrap()
            .run();
        assert_eq!(
            code_of(&r),
            ref_code,
            "fail at {t} ns: checksum mismatch ({:?})",
            r.failovers
        );
        check_single_processor_consistency(&r.disk_log)
            .unwrap_or_else(|e| panic!("fail at {t} ns: {e}"));
    }
}

#[test]
fn console_failover_hands_off_once() {
    // A long console workload killed mid-way: output must be a prefix
    // from host 0 then a suffix from host 1, with the byte stream intact.
    let image = build_image(
        &KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
        &hello_source("abcdefghijklmnopqrstuvwxyz", 3),
    )
    .unwrap();
    let total = fast(&image).build().unwrap().run().completion_time;

    let r = fast(&image)
        .fail_primary_at(SimTime::from_nanos(total.as_nanos() / 3))
        .build()
        .unwrap()
        .run();
    assert_eq!(r.exit, ExitStatus::Exit(42));
    let s = String::from_utf8_lossy(&r.console).into_owned();
    // The console is our one fire-and-forget device: bytes the primary
    // had not yet emitted when it died, but that fell inside epochs the
    // backup executed with suppression, are lost — the paper's protocols
    // protect request/completion I/O (via P7 retries), not blind output.
    // What must hold: the stream is an in-order subsequence of the
    // expected text with at most one host switch.
    assert!(
        is_subsequence(&s, "abcdefghijklmnopqrstuvwxyz"),
        "console bytes out of order or alien: {s:?}"
    );
    assert!(
        s.starts_with('a'),
        "primary's prefix must be present: {s:?}"
    );
    assert!(r.console_hosts.len() <= 2);
}

fn is_subsequence(needle: &str, hay: &str) -> bool {
    let mut it = hay.chars();
    needle.chars().all(|c| it.any(|h| h == c))
}

#[test]
fn divergence_detector_fires_without_tlb_management() {
    // Reproduce the paper's HP 9000/720 surprise: with hypervisor TLB
    // management disabled and non-deterministic replacement, the two
    // replicas' instruction streams drift apart and the lockstep checker
    // must notice.
    let image = cpu_image(400);
    let r = fast(&image)
        .tlb_managed(false)
        .tlb_slots(4) // tiny TLB forces frequent replacement
        .build()
        .unwrap()
        .run();
    assert!(
        !r.lockstep_clean,
        "expected divergence with unmanaged non-deterministic TLBs (compared {} epochs)",
        r.lockstep_compared
    );
}

#[test]
fn managed_tlb_stays_clean_even_when_tiny() {
    let image = cpu_image(400);
    let r = fast(&image)
        .tlb_managed(true)
        .tlb_slots(4)
        .build()
        .unwrap()
        .run();
    assert!(r.lockstep_clean);
    assert!(r.exit.is_clean_exit());
}

#[test]
fn transient_disk_faults_are_retried_by_the_guest() {
    let image = io_image(8, IoMode::Write);
    let r = fast(&image)
        .disk_fault_prob(0.3)
        .seed(11)
        .build()
        .unwrap()
        .run();
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
    assert!(
        r.guest_retries > 0,
        "with 30% fault injection some retries must happen"
    );
    assert!(
        r.lockstep_clean,
        "retries are part of the replicated stream"
    );
    check_single_processor_consistency(&r.disk_log).expect("consistency under faults");
    assert!(r.disk_log.len() > 8, "retries must appear in the log");
}

#[test]
fn interrupt_forwarding_counts_messages() {
    let image = cpu_image(200);
    let r = fast(&image).build().unwrap().run();
    let (from_primary, from_backup) = (r.messages_per_replica[0], r.messages_per_replica[1]);
    // Per epoch: [Tme] + [end] from the primary, at least one ack back.
    assert!(from_primary as i64 >= 2 * r.lockstep_compared as i64 - 2);
    assert!(from_backup > 0);
}

#[test]
fn failure_before_any_epoch_promotes_backup_from_start() {
    let image = cpu_image(100);
    let r = fast(&image)
        .fail_primary_at(SimTime::from_nanos(1_000))
        // Keep the detector snappy so the test is fast.
        .detector_timeout(SimDuration::from_millis(5))
        .build()
        .unwrap()
        .run();
    assert!(!r.failovers.is_empty());
    assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
}

#[test]
fn tracer_records_failover_timeline() {
    let image = io_image(3, IoMode::Write);
    let total = fast(&image).build().unwrap().run().completion_time;

    let scenario = fast(&image)
        .fail_primary_at(SimTime::from_nanos(total.as_nanos() / 2))
        .build()
        .unwrap();
    let mut runner = scenario.runner();
    runner
        .ft_mut()
        .expect("replicated driver")
        .tracer_mut()
        .set_enabled(true);
    let r = runner.run();
    assert!(!r.failovers.is_empty());
    let lines = runner
        .ft_mut()
        .expect("replicated driver")
        .tracer_mut()
        .render();
    assert!(
        lines.iter().any(|l| l.contains("failstopped")),
        "trace must record the failure: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("P6: backup promoted")),
        "trace must record the promotion: {lines:?}"
    );
}

#[test]
fn user_privileged_instruction_is_fatal_via_guest_kernel() {
    // A user program attempting `halt` must be killed by the guest
    // kernel's PrivilegedOp handler — on both replicas identically.
    let user = format!(
        ".org {utext:#x}\nu_main:\n    halt\n",
        utext = hvft_guest::layout::USER_TEXT
    );
    let image = build_image(&KernelConfig::default(), &user).unwrap();
    let r = fast(&image).build().unwrap().run();
    match r.exit {
        ExitStatus::Fatal(Some(2)) => {} // kernel fatal code 2 = privileged op
        other => panic!("expected kernel fatal, got {other:?}"),
    }
    assert!(r.lockstep_clean);
}

#[test]
fn unknown_syscall_is_fatal_via_guest_kernel() {
    let user = format!(
        ".org {utext:#x}\nu_main:\n    gate 999\n    halt\n",
        utext = hvft_guest::layout::USER_TEXT
    );
    let image = build_image(&KernelConfig::default(), &user).unwrap();
    let r = fast(&image).build().unwrap().run();
    match r.exit {
        ExitStatus::Fatal(Some(9)) => {} // kernel fatal code 9 = bad syscall
        other => panic!("expected kernel fatal, got {other:?}"),
    }
}

#[test]
fn user_access_to_unmapped_page_is_fatal() {
    // Touching an address beyond the boot page table: the TLB miss walks
    // to an invalid PTE and the guest's no-map path fires (fatal code 8),
    // identically on both replicas whether the hypervisor or the guest
    // handles the miss.
    let user = format!(
        ".org {utext:#x}\nu_main:\n    li r4, 0x00300000\n    lw r5, 0(r4)\n    halt\n",
        utext = hvft_guest::layout::USER_TEXT
    );
    let image = build_image(&KernelConfig::default(), &user).unwrap();
    for tlb_managed in [true, false] {
        let r = fast(&image).tlb_managed(tlb_managed).build().unwrap().run();
        match r.exit {
            ExitStatus::Fatal(Some(8)) => {}
            other => panic!("tlb_managed={tlb_managed}: expected no-map fatal, got {other:?}"),
        }
    }
}
