//! Integration tests of the replica-coordination protocols (P1–P7).

// These tests deliberately drive the legacy constructors while the
// deprecated shims exist; the scenario layer has its own test suite.
#![allow(deprecated)]

use hvft_core::config::{FailureSpec, FtConfig, ProtocolVariant};
use hvft_core::system::{FtSystem, RunEnd};
use hvft_devices::disk::check_single_processor_consistency;
use hvft_guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft_hypervisor::cost::CostModel;
use hvft_sim::time::{SimDuration, SimTime};

fn fast_cfg() -> FtConfig {
    // Functional cost model keeps tests quick; protocol behaviour is
    // identical.
    FtConfig {
        cost: CostModel::functional(),
        ..FtConfig::default()
    }
}

fn cpu_image(iters: u32) -> hvft_isa::program::Program {
    build_image(
        &KernelConfig {
            tick_period_us: 2000,
            tick_work: 3,
            ..KernelConfig::default()
        },
        &dhrystone_source(iters, 10),
    )
    .expect("image builds")
}

fn io_image(ops: u32, mode: IoMode) -> hvft_isa::program::Program {
    build_image(&KernelConfig::default(), &io_bench_source(ops, mode, 64, 7)).expect("image builds")
}

#[test]
fn cpu_workload_lockstep_is_clean() {
    let mut sys = FtSystem::new(&cpu_image(1200), fast_cfg());
    let r = sys.run();
    assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
    assert!(
        r.lockstep.is_clean(),
        "divergences: {:?}",
        r.lockstep.divergences()
    );
    assert!(
        r.lockstep.compared() > 2,
        "compared only {} epochs",
        r.lockstep.compared()
    );
    assert!(r.failovers.is_empty());
}

#[test]
fn ft_checksum_matches_bare_hardware() {
    // The same image must compute the identical checksum on bare
    // hardware and under replication — transparency in both directions.
    let image = cpu_image(200);
    let mut bare = hvft_hypervisor::bare::BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft_guest::layout::RAM_BYTES,
        64,
        3,
    );
    let bare_result = bare.run(1_000_000_000);
    let bare_code = match bare_result.exit {
        hvft_hypervisor::bare::BareExit::Halted { code } => code.expect("bare exit code"),
        other => panic!("bare run ended {other:?}"),
    };

    let mut sys = FtSystem::new(&image, fast_cfg());
    let r = sys.run();
    match r.outcome {
        RunEnd::Exit { code } => assert_eq!(code, bare_code, "FT checksum differs from bare"),
        other => panic!("FT run ended {other:?}"),
    }
}

#[test]
fn epoch_length_does_not_change_results() {
    let image = cpu_image(150);
    let mut codes = Vec::new();
    for epoch_len in [512, 1024, 4096, 16384] {
        let mut cfg = fast_cfg();
        cfg.hv.epoch_len = epoch_len;
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        assert!(r.lockstep.is_clean(), "EL={epoch_len} diverged");
        match r.outcome {
            RunEnd::Exit { code } => codes.push(code),
            other => panic!("EL={epoch_len}: {other:?}"),
        }
    }
    assert!(
        codes.windows(2).all(|w| w[0] == w[1]),
        "checksums vary with epoch length: {codes:?}"
    );
}

#[test]
fn disk_write_workload_under_replication() {
    let mut sys = FtSystem::new(&io_image(6, IoMode::Write), fast_cfg());
    let r = sys.run();
    assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
    assert!(r.lockstep.is_clean(), "{:?}", r.lockstep.divergences());
    assert_eq!(r.disk_log.len(), 6);
    assert!(
        r.disk_log.iter().all(|e| e.host == 0),
        "only the primary touches the disk"
    );
    check_single_processor_consistency(&r.disk_log).expect("environment consistency");
    assert_eq!(r.op_latencies.len(), 6);
}

#[test]
fn disk_read_workload_under_replication() {
    let image = io_image(5, IoMode::Read);
    let mut sys = FtSystem::new(&image, fast_cfg());
    // Pre-fill the shared medium so reads return observable data.
    let pattern: Vec<u8> = (0..hvft_devices::disk::BLOCK_SIZE)
        .map(|i| (i % 13) as u8)
        .collect();
    for b in 0..64 {
        sys.disk_mut().poke_block(b, &pattern);
    }
    let r = sys.run();
    assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
    assert!(
        r.lockstep.is_clean(),
        "read data must reach both replicas: {:?}",
        r.lockstep.divergences()
    );
    assert_eq!(r.disk_log.len(), 5);
}

#[test]
fn console_output_comes_from_primary_only() {
    let image = build_image(
        &KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
        &hello_source("ft says hi\n", 2),
    )
    .unwrap();
    let mut sys = FtSystem::new(&image, fast_cfg());
    let r = sys.run();
    assert!(
        matches!(r.outcome, RunEnd::Exit { code: 42 }),
        "{:?}",
        r.outcome
    );
    assert_eq!(String::from_utf8_lossy(&r.console_output), "ft says hi\n");
    assert_eq!(r.console_hosts, vec![0], "backup output must be suppressed");
}

#[test]
fn new_protocol_produces_identical_results() {
    let image = cpu_image(200);
    let run = |protocol| {
        let mut cfg = fast_cfg();
        cfg.protocol = protocol;
        let mut sys = FtSystem::new(&image, cfg);
        sys.run()
    };
    let old = run(ProtocolVariant::Old);
    let new = run(ProtocolVariant::New);
    assert!(old.lockstep.is_clean() && new.lockstep.is_clean());
    match (old.outcome, new.outcome) {
        (RunEnd::Exit { code: a }, RunEnd::Exit { code: b }) => assert_eq!(a, b),
        other => panic!("{other:?}"),
    }
}

#[test]
fn new_protocol_is_faster_with_real_costs() {
    // Table 1's headline: dropping the boundary ack-wait helps,
    // most of all for CPU-intensive workloads.
    let image = cpu_image(400);
    let run = |protocol| {
        let mut cfg = FtConfig {
            protocol,
            ..FtConfig::default()
        };
        cfg.hv.epoch_len = 1024;
        let mut sys = FtSystem::new(&image, cfg);
        sys.run()
    };
    let old = run(ProtocolVariant::Old);
    let new = run(ProtocolVariant::New);
    assert!(
        new.completion_time < old.completion_time,
        "new {} should beat old {}",
        new.completion_time,
        old.completion_time
    );
}

#[test]
fn failover_mid_cpu_run_is_transparent() {
    let image = cpu_image(400);
    // Reference: failure-free run.
    let mut reference = FtSystem::new(&image, fast_cfg());
    let ref_result = reference.run();
    let ref_code = match ref_result.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("{other:?}"),
    };

    // Kill the primary mid-run.
    let mut cfg = fast_cfg();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(
        ref_result.completion_time.as_nanos() / 2,
    ));
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    let failover = *r.failovers.first().expect("failover must have happened");
    assert!(failover.at > SimTime::ZERO);
    match r.outcome {
        RunEnd::Exit { code } => {
            assert_eq!(
                code, ref_code,
                "promoted backup must produce the identical checksum"
            )
        }
        other => panic!("after failover: {other:?}"),
    }
}

#[test]
fn failover_during_disk_write_retries_uncertainly() {
    let image = io_image(6, IoMode::Write);
    // Run once to learn the timing, then kill the primary in the middle
    // of the I/O phase.
    let mut probe = FtSystem::new(&image, fast_cfg());
    let probe_result = probe.run();
    let total = probe_result.completion_time;

    let mut cfg = fast_cfg();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(total.as_nanos() / 2));
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    assert!(!r.failovers.is_empty(), "no failover: {:?}", r.outcome);
    assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
    // The environment saw a single-processor-consistent sequence even if
    // commands were repeated after the uncertain interrupt.
    check_single_processor_consistency(&r.disk_log)
        .unwrap_or_else(|e| panic!("environment saw an anomaly: {e}\nlog: {:#?}", r.disk_log));
    // All six logical writes completed from the guest's point of view.
    match r.outcome {
        RunEnd::Exit { code } => assert_eq!(
            code,
            match probe_result.outcome {
                RunEnd::Exit { code } => code,
                _ => unreachable!(),
            }
        ),
        _ => unreachable!(),
    }
}

#[test]
fn failover_sweep_never_breaks_consistency() {
    // Kill the primary at many different points; every run must end with
    // the reference checksum and a legal environment log.
    let image = io_image(3, IoMode::Write);
    let mut probe = FtSystem::new(&image, fast_cfg());
    let probe_r = probe.run();
    let total_ns = probe_r.completion_time.as_nanos();
    let ref_code = match probe_r.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("{other:?}"),
    };

    for k in 1..10 {
        let t = total_ns * k / 10;
        let mut cfg = fast_cfg();
        cfg.failure = FailureSpec::At(SimTime::from_nanos(t));
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => {
                assert_eq!(code, ref_code, "fail at {t} ns: checksum mismatch")
            }
            other => panic!("fail at {t} ns: {other:?} (failovers: {:?})", r.failovers),
        }
        check_single_processor_consistency(&r.disk_log)
            .unwrap_or_else(|e| panic!("fail at {t} ns: {e}"));
    }
}

#[test]
fn console_failover_hands_off_once() {
    // A long console workload killed mid-way: output must be a prefix
    // from host 0 then a suffix from host 1, with the byte stream intact.
    let image = build_image(
        &KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
        &hello_source("abcdefghijklmnopqrstuvwxyz", 3),
    )
    .unwrap();
    let mut probe = FtSystem::new(&image, fast_cfg());
    let total = probe.run().completion_time;

    let mut cfg = fast_cfg();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(total.as_nanos() / 3));
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    assert!(
        matches!(r.outcome, RunEnd::Exit { code: 42 }),
        "{:?}",
        r.outcome
    );
    let s = String::from_utf8_lossy(&r.console_output).into_owned();
    // The console is our one fire-and-forget device: bytes the primary
    // had not yet emitted when it died, but that fell inside epochs the
    // backup executed with suppression, are lost — the paper's protocols
    // protect request/completion I/O (via P7 retries), not blind output.
    // What must hold: the stream is an in-order subsequence of the
    // expected text with at most one host switch.
    assert!(
        is_subsequence(&s, "abcdefghijklmnopqrstuvwxyz"),
        "console bytes out of order or alien: {s:?}"
    );
    assert!(
        s.starts_with('a'),
        "primary's prefix must be present: {s:?}"
    );
    assert!(r.console_hosts.len() <= 2);
}

fn is_subsequence(needle: &str, hay: &str) -> bool {
    let mut it = hay.chars();
    needle.chars().all(|c| it.any(|h| h == c))
}

#[test]
fn divergence_detector_fires_without_tlb_management() {
    // Reproduce the paper's HP 9000/720 surprise: with hypervisor TLB
    // management disabled and non-deterministic replacement, the two
    // replicas' instruction streams drift apart and the lockstep checker
    // must notice.
    let image = cpu_image(400);
    let mut cfg = fast_cfg();
    cfg.hv.tlb_managed = false;
    cfg.hv.tlb_slots = 4; // tiny TLB forces frequent replacement
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    assert!(
        !r.lockstep.is_clean(),
        "expected divergence with unmanaged non-deterministic TLBs (compared {} epochs)",
        r.lockstep.compared()
    );
}

#[test]
fn managed_tlb_stays_clean_even_when_tiny() {
    let image = cpu_image(400);
    let mut cfg = fast_cfg();
    cfg.hv.tlb_managed = true;
    cfg.hv.tlb_slots = 4;
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    assert!(r.lockstep.is_clean(), "{:?}", r.lockstep.divergences());
    assert!(matches!(r.outcome, RunEnd::Exit { .. }));
}

#[test]
fn transient_disk_faults_are_retried_by_the_guest() {
    let image = io_image(8, IoMode::Write);
    let mut cfg = fast_cfg();
    cfg.disk_fault_prob = 0.3;
    cfg.seed = 11;
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
    assert!(
        r.guest_retries > 0,
        "with 30% fault injection some retries must happen"
    );
    assert!(
        r.lockstep.is_clean(),
        "retries are part of the replicated stream"
    );
    check_single_processor_consistency(&r.disk_log).expect("consistency under faults");
    assert!(r.disk_log.len() > 8, "retries must appear in the log");
}

#[test]
fn interrupt_forwarding_counts_messages() {
    let image = cpu_image(200);
    let mut sys = FtSystem::new(&image, fast_cfg());
    let r = sys.run();
    let (from_primary, from_backup) = (r.messages_per_replica[0], r.messages_per_replica[1]);
    // Per epoch: [Tme] + [end] from the primary, at least one ack back.
    assert!(from_primary as i64 >= 2 * r.lockstep.compared() as i64 - 2);
    assert!(from_backup > 0);
}

#[test]
fn failure_before_any_epoch_promotes_backup_from_start() {
    let image = cpu_image(100);
    let mut cfg = fast_cfg();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(1_000));
    // Keep the detector snappy so the test is fast.
    cfg.detector_timeout = SimDuration::from_millis(5);
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    assert!(!r.failovers.is_empty());
    assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
}

#[test]
fn tracer_records_failover_timeline() {
    let image = io_image(3, IoMode::Write);
    let mut probe = FtSystem::new(&image, fast_cfg());
    let total = probe.run().completion_time;

    let mut cfg = fast_cfg();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(total.as_nanos() / 2));
    let mut sys = FtSystem::new(&image, cfg);
    sys.tracer_mut().set_enabled(true);
    let r = sys.run();
    assert!(!r.failovers.is_empty());
    let lines = sys.tracer_mut().render();
    assert!(
        lines.iter().any(|l| l.contains("failstopped")),
        "trace must record the failure: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("P6: backup promoted")),
        "trace must record the promotion: {lines:?}"
    );
}

#[test]
fn user_privileged_instruction_is_fatal_via_guest_kernel() {
    // A user program attempting `halt` must be killed by the guest
    // kernel's PrivilegedOp handler — on both replicas identically.
    let user = format!(
        ".org {utext:#x}\nu_main:\n    halt\n",
        utext = hvft_guest::layout::USER_TEXT
    );
    let image = build_image(&KernelConfig::default(), &user).unwrap();
    let mut sys = FtSystem::new(&image, fast_cfg());
    let r = sys.run();
    match r.outcome {
        RunEnd::Fatal { code: Some(2) } => {} // kernel fatal code 2 = privileged op
        other => panic!("expected kernel fatal, got {other:?}"),
    }
    assert!(r.lockstep.is_clean());
}

#[test]
fn unknown_syscall_is_fatal_via_guest_kernel() {
    let user = format!(
        ".org {utext:#x}\nu_main:\n    gate 999\n    halt\n",
        utext = hvft_guest::layout::USER_TEXT
    );
    let image = build_image(&KernelConfig::default(), &user).unwrap();
    let mut sys = FtSystem::new(&image, fast_cfg());
    let r = sys.run();
    match r.outcome {
        RunEnd::Fatal { code: Some(9) } => {} // kernel fatal code 9 = bad syscall
        other => panic!("expected kernel fatal, got {other:?}"),
    }
}

#[test]
fn user_access_to_unmapped_page_is_fatal() {
    // Touching an address beyond the boot page table: the TLB miss walks
    // to an invalid PTE and the guest's no-map path fires (fatal code 8),
    // identically on both replicas whether the hypervisor or the guest
    // handles the miss.
    let user = format!(
        ".org {utext:#x}\nu_main:\n    li r4, 0x00300000\n    lw r5, 0(r4)\n    halt\n",
        utext = hvft_guest::layout::USER_TEXT
    );
    let image = build_image(&KernelConfig::default(), &user).unwrap();
    for tlb_managed in [true, false] {
        let mut cfg = fast_cfg();
        cfg.hv.tlb_managed = tlb_managed;
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        match r.outcome {
            RunEnd::Fatal { code: Some(8) } => {}
            other => panic!("tlb_managed={tlb_managed}: expected no-map fatal, got {other:?}"),
        }
    }
}
