//! The shared disk model.
//!
//! The paper's prototype hangs a single SCSI disk off a bus chained to
//! both processors (I/O Device Accessibility Assumption). Every device is
//! required to satisfy the interface contract of §2.2:
//!
//! - **IO1**: if an I/O instruction is issued and performed, the issuing
//!   processor receives a *completion* interrupt;
//! - **IO2**: if the issuing processor receives an *uncertain* interrupt
//!   (SCSI `CHECK_CONDITION`), the I/O may or may not have been performed.
//!
//! Drivers must therefore retry on uncertain interrupts, and the
//! environment must tolerate repeated I/O instructions. Rule P7 exploits
//! exactly this: after failover, outstanding I/O gets a synthesized
//! uncertain interrupt and the (replayed) driver retries.
//!
//! This model implements that contract, including injectable transient
//! faults where the operation's effect *may or may not* have been applied,
//! and keeps an **operation log** so tests can verify that the
//! environment observed a sequence consistent with a single processor.

use hvft_sim::rng::SimRng;
use hvft_sim::time::{SimDuration, SimTime};

/// Disk block size in bytes (the paper's read benchmark uses 8 KB blocks).
pub const BLOCK_SIZE: usize = 8192;

/// A disk command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskCommand {
    /// Transfer a block from disk to host memory.
    Read,
    /// Transfer a block from host memory to disk.
    Write,
}

/// Status delivered with the completion interrupt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskStatus {
    /// IO1: the operation was performed.
    Complete,
    /// IO2: the operation may or may not have been performed
    /// (SCSI `CHECK_CONDITION`); the driver must retry.
    Uncertain,
}

/// One entry of the environment-visible operation log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskLogEntry {
    /// Simulated time the command was issued.
    pub issued_at: SimTime,
    /// Which host issued it (0 = primary's processor, 1 = backup's).
    pub host: u8,
    /// The command.
    pub cmd: DiskCommand,
    /// Target block.
    pub block: u32,
    /// Status eventually returned.
    pub status: DiskStatus,
    /// Whether the effect was actually applied (writes) / data actually
    /// transferred (reads). Only meaningful for `Uncertain` outcomes,
    /// where IO2 leaves it ambiguous to the host.
    pub applied: bool,
}

/// Errors from disk command submission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskError {
    /// A command is already in flight (single-threaded controller).
    Busy,
    /// Block number beyond the medium.
    BadBlock {
        /// The offending block number.
        block: u32,
    },
}

impl core::fmt::Display for DiskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            DiskError::Busy => write!(f, "controller busy"),
            DiskError::BadBlock { block } => write!(f, "block {block} out of range"),
        }
    }
}

impl std::error::Error for DiskError {}

/// An in-flight operation.
#[derive(Clone, Debug)]
pub struct PendingOp {
    /// The command.
    pub cmd: DiskCommand,
    /// Target block.
    pub block: u32,
    /// Issuing host.
    pub host: u8,
    /// Index into the log, filled at completion.
    log_idx: usize,
}

/// Complete disk state — medium, controller, fault-injection RNG and
/// operation log — captured by [`Disk::snapshot`] for whole-system
/// checkpoints. (Replica reintegration does *not* ship this: the disk
/// is shared environment, accessible to every processor on the bus.)
#[derive(Clone, Debug)]
pub struct DiskSnapshot {
    blocks: Vec<u8>,
    num_blocks: u32,
    read_time: SimDuration,
    write_time: SimDuration,
    pending: Option<PendingOp>,
    log: Vec<DiskLogEntry>,
    rng: SimRng,
    fault_prob: f64,
    force_uncertain: u32,
}

/// The shared disk: storage, timing, fault injection, and the
/// environment log.
///
/// The embedding host drives the protocol:
/// 1. [`Disk::submit`] when the guest writes the GO register — returns the
///    service time; the host schedules a completion event;
/// 2. [`Disk::complete_write`] / [`Disk::complete_read`] when that event
///    fires — applies the effect (subject to injected faults) and returns
///    the [`DiskStatus`] to post with the interrupt.
pub struct Disk {
    blocks: Vec<u8>,
    num_blocks: u32,
    read_time: SimDuration,
    write_time: SimDuration,
    pending: Option<PendingOp>,
    log: Vec<DiskLogEntry>,
    rng: SimRng,
    fault_prob: f64,
    force_uncertain: u32,
}

impl Disk {
    /// Creates a zero-filled disk of `num_blocks` blocks with the paper's
    /// service times (read 24.2 ms, write 26 ms) and no transient faults.
    pub fn new(num_blocks: u32, seed: u64) -> Self {
        Disk {
            blocks: vec![0; num_blocks as usize * BLOCK_SIZE],
            num_blocks,
            read_time: SimDuration::from_micros_f64(24_200.0),
            write_time: SimDuration::from_micros_f64(26_000.0),
            pending: None,
            log: Vec::new(),
            rng: SimRng::seed_from_label(seed, "disk"),
            fault_prob: 0.0,
            force_uncertain: 0,
        }
    }

    /// Overrides the service times.
    pub fn set_service_times(&mut self, read: SimDuration, write: SimDuration) {
        self.read_time = read;
        self.write_time = write;
    }

    /// Read service time.
    pub fn read_time(&self) -> SimDuration {
        self.read_time
    }

    /// Write service time.
    pub fn write_time(&self) -> SimDuration {
        self.write_time
    }

    /// Sets the probability that an operation completes with an
    /// *uncertain* interrupt (IO2), exercising driver retry paths.
    pub fn set_fault_probability(&mut self, p: f64) {
        self.fault_prob = p.clamp(0.0, 1.0);
    }

    /// Forces the next `n` completions to be uncertain (deterministic
    /// fault injection for tests).
    pub fn force_uncertain(&mut self, n: u32) {
        self.force_uncertain += n;
    }

    /// Number of blocks on the medium.
    pub fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    /// Whether a command is in flight.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// The in-flight operation, if any.
    pub fn pending(&self) -> Option<&PendingOp> {
        self.pending.as_ref()
    }

    /// Submits a command; returns how long the operation will take.
    /// The host must call the matching `complete_*` after that delay.
    pub fn submit(
        &mut self,
        now: SimTime,
        host: u8,
        cmd: DiskCommand,
        block: u32,
    ) -> Result<SimDuration, DiskError> {
        if self.pending.is_some() {
            return Err(DiskError::Busy);
        }
        if block >= self.num_blocks {
            return Err(DiskError::BadBlock { block });
        }
        let log_idx = self.log.len();
        self.log.push(DiskLogEntry {
            issued_at: now,
            host,
            cmd,
            block,
            status: DiskStatus::Complete, // patched at completion
            applied: false,
        });
        self.pending = Some(PendingOp {
            cmd,
            block,
            host,
            log_idx,
        });
        Ok(match cmd {
            DiskCommand::Read => self.read_time,
            DiskCommand::Write => self.write_time,
        })
    }

    /// Abandons the in-flight operation *without* completing it, as
    /// happens when the issuing processor dies mid-transfer. The
    /// operation's effect is decided now (it may have reached the medium
    /// or not — the essence of the two-generals situation of §2.2), but
    /// no interrupt is ever delivered for it.
    pub fn abandon(&mut self, data_if_write: Option<&[u8]>) {
        let Some(op) = self.pending.take() else {
            return;
        };
        // The medium may have absorbed the write before the crash.
        let applied = self.rng.gen_bool(0.5);
        if applied {
            if let (DiskCommand::Write, Some(data)) = (op.cmd, data_if_write) {
                self.store(op.block, data);
            }
        }
        let entry = &mut self.log[op.log_idx];
        entry.status = DiskStatus::Uncertain;
        entry.applied = applied;
    }

    fn outcome(&mut self) -> (DiskStatus, bool) {
        if self.force_uncertain > 0 {
            self.force_uncertain -= 1;
            // IO2: performed-or-not is genuinely ambiguous.
            let applied = self.rng.gen_bool(0.5);
            return (DiskStatus::Uncertain, applied);
        }
        if self.fault_prob > 0.0 && self.rng.gen_bool(self.fault_prob) {
            let applied = self.rng.gen_bool(0.5);
            return (DiskStatus::Uncertain, applied);
        }
        (DiskStatus::Complete, true)
    }

    /// Completes an in-flight write with the data the host DMA'd from
    /// guest memory. Returns the status to deliver with the interrupt.
    ///
    /// # Panics
    ///
    /// Panics if no write is pending or `data` is not one block.
    pub fn complete_write(&mut self, data: &[u8]) -> DiskStatus {
        assert_eq!(data.len(), BLOCK_SIZE, "writes are whole blocks");
        let op = self.pending.take().expect("no pending operation");
        assert_eq!(op.cmd, DiskCommand::Write, "pending op is not a write");
        let (status, applied) = self.outcome();
        if applied {
            self.store(op.block, data);
        }
        let entry = &mut self.log[op.log_idx];
        entry.status = status;
        entry.applied = applied;
        status
    }

    /// Completes an in-flight read. Returns the status and, when the data
    /// transfer happened, the block contents for the host to DMA into
    /// guest memory.
    ///
    /// # Panics
    ///
    /// Panics if no read is pending.
    pub fn complete_read(&mut self) -> (DiskStatus, Option<Vec<u8>>) {
        let op = self.pending.take().expect("no pending operation");
        assert_eq!(op.cmd, DiskCommand::Read, "pending op is not a read");
        let (status, applied) = self.outcome();
        let data = if applied {
            Some(self.fetch(op.block).to_vec())
        } else {
            None
        };
        let entry = &mut self.log[op.log_idx];
        entry.status = status;
        entry.applied = applied;
        (status, data)
    }

    fn store(&mut self, block: u32, data: &[u8]) {
        let at = block as usize * BLOCK_SIZE;
        self.blocks[at..at + BLOCK_SIZE].copy_from_slice(data);
    }

    fn fetch(&self, block: u32) -> &[u8] {
        let at = block as usize * BLOCK_SIZE;
        &self.blocks[at..at + BLOCK_SIZE]
    }

    /// Direct medium access for test setup and verification (not part of
    /// the device interface).
    pub fn peek_block(&self, block: u32) -> &[u8] {
        self.fetch(block)
    }

    /// Direct medium mutation for test setup.
    pub fn poke_block(&mut self, block: u32, data: &[u8]) {
        assert_eq!(data.len(), BLOCK_SIZE);
        self.store(block, data);
    }

    /// The environment-visible operation log.
    pub fn log(&self) -> &[DiskLogEntry] {
        &self.log
    }

    /// Captures the complete disk state for a system checkpoint.
    pub fn snapshot(&self) -> DiskSnapshot {
        DiskSnapshot {
            blocks: self.blocks.clone(),
            num_blocks: self.num_blocks,
            read_time: self.read_time,
            write_time: self.write_time,
            pending: self.pending.clone(),
            log: self.log.clone(),
            rng: self.rng.clone(),
            fault_prob: self.fault_prob,
            force_uncertain: self.force_uncertain,
        }
    }

    /// Restores state captured by [`Disk::snapshot`], including the
    /// in-flight operation and the fault-injection RNG stream, so
    /// post-restore outcomes match the uninterrupted run exactly.
    pub fn restore(&mut self, snap: &DiskSnapshot) {
        self.blocks = snap.blocks.clone();
        self.num_blocks = snap.num_blocks;
        self.read_time = snap.read_time;
        self.write_time = snap.write_time;
        self.pending = snap.pending.clone();
        self.log = snap.log.clone();
        self.rng = snap.rng.clone();
        self.fault_prob = snap.fault_prob;
        self.force_uncertain = snap.force_uncertain;
    }
}

/// Checks that an operation log is consistent with what a single
/// processor could have produced.
///
/// The enforceable invariant is that commands come from at most one
/// host at a time, and that hand-overs only ever move *forward* down
/// the replica chain (primary → promoted backup → next promoted backup,
/// for t-fault systems) with no interleaving back to an earlier host.
/// Repeated `(cmd, block)` pairs across a switch are *not* flagged:
/// they are indistinguishable from a program that legitimately
/// re-issues the operation, and IO2 obliges the environment to tolerate
/// repetition anyway — rule P7 leans on exactly that. Whether the
/// *effects* are right is checked separately by comparing final medium
/// state against a failure-free reference run.
///
/// Returns `Err` with a description of the first violation.
pub fn check_single_processor_consistency(log: &[DiskLogEntry]) -> Result<(), String> {
    let mut current_host: Option<u8> = None;
    for (i, e) in log.iter().enumerate() {
        match current_host {
            None => current_host = Some(e.host),
            Some(h) if e.host < h => {
                return Err(format!(
                    "op {i}: command from host {} after host {h} took over",
                    e.host
                ));
            }
            Some(_) => current_host = Some(e.host),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn block_of(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut d = Disk::new(16, 7);
        let dur = d.submit(t0(), 0, DiskCommand::Write, 3).unwrap();
        assert_eq!(dur, SimDuration::from_micros(26_000));
        assert_eq!(d.complete_write(&block_of(0xAA)), DiskStatus::Complete);

        d.submit(t0(), 0, DiskCommand::Read, 3).unwrap();
        let (status, data) = d.complete_read();
        assert_eq!(status, DiskStatus::Complete);
        assert_eq!(data.unwrap(), block_of(0xAA));
    }

    #[test]
    fn busy_while_pending() {
        let mut d = Disk::new(4, 0);
        d.submit(t0(), 0, DiskCommand::Read, 0).unwrap();
        assert_eq!(
            d.submit(t0(), 0, DiskCommand::Read, 1),
            Err(DiskError::Busy)
        );
        assert!(d.is_busy());
        let _ = d.complete_read();
        assert!(!d.is_busy());
    }

    #[test]
    fn bad_block_rejected() {
        let mut d = Disk::new(4, 0);
        assert_eq!(
            d.submit(t0(), 0, DiskCommand::Read, 4),
            Err(DiskError::BadBlock { block: 4 })
        );
    }

    #[test]
    fn forced_uncertain_write_may_or_may_not_apply() {
        // Run many injected faults; both "applied" and "not applied"
        // outcomes must occur — IO2's ambiguity is real.
        let mut applied = 0;
        let mut not_applied = 0;
        for seed in 0..32 {
            let mut d = Disk::new(2, seed);
            d.poke_block(1, &block_of(0x00));
            d.force_uncertain(1);
            d.submit(t0(), 0, DiskCommand::Write, 1).unwrap();
            let status = d.complete_write(&block_of(0xBB));
            assert_eq!(status, DiskStatus::Uncertain);
            if d.peek_block(1) == block_of(0xBB).as_slice() {
                applied += 1;
            } else {
                not_applied += 1;
            }
        }
        assert!(applied > 0, "some uncertain writes should reach the medium");
        assert!(not_applied > 0, "some uncertain writes should be lost");
    }

    #[test]
    fn uncertain_read_may_withhold_data() {
        let mut saw_data = false;
        let mut saw_none = false;
        for seed in 0..32 {
            let mut d = Disk::new(2, seed);
            d.force_uncertain(1);
            d.submit(t0(), 0, DiskCommand::Read, 0).unwrap();
            let (status, data) = d.complete_read();
            assert_eq!(status, DiskStatus::Uncertain);
            match data {
                Some(_) => saw_data = true,
                None => saw_none = true,
            }
        }
        assert!(saw_data && saw_none);
    }

    #[test]
    fn retry_after_uncertain_write_is_idempotent() {
        // The driver contract: on uncertain, repeat the same write. The
        // medium must end up with the data exactly once.
        let mut d = Disk::new(2, 3);
        d.force_uncertain(1);
        d.submit(t0(), 0, DiskCommand::Write, 0).unwrap();
        assert_eq!(d.complete_write(&block_of(0x42)), DiskStatus::Uncertain);
        // Retry.
        d.submit(t0(), 0, DiskCommand::Write, 0).unwrap();
        assert_eq!(d.complete_write(&block_of(0x42)), DiskStatus::Complete);
        assert_eq!(d.peek_block(0), block_of(0x42).as_slice());
    }

    #[test]
    fn abandon_decides_effect_without_interrupt() {
        let mut d = Disk::new(2, 5);
        d.submit(t0(), 0, DiskCommand::Write, 0).unwrap();
        d.abandon(Some(&block_of(0x99)));
        assert!(!d.is_busy());
        let e = &d.log()[0];
        assert_eq!(e.status, DiskStatus::Uncertain);
        // Whether it applied is recorded for the environment-consistency
        // check, even though no host ever learns it.
        if e.applied {
            assert_eq!(d.peek_block(0), block_of(0x99).as_slice());
        } else {
            assert_eq!(d.peek_block(0), block_of(0x00).as_slice());
        }
    }

    #[test]
    fn log_records_operations() {
        let mut d = Disk::new(4, 0);
        d.submit(SimTime::from_nanos(10), 0, DiskCommand::Write, 2)
            .unwrap();
        d.complete_write(&block_of(1));
        d.submit(SimTime::from_nanos(20), 0, DiskCommand::Read, 2)
            .unwrap();
        d.complete_read();
        let log = d.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].cmd, DiskCommand::Write);
        assert_eq!(log[1].cmd, DiskCommand::Read);
        assert_eq!(log[0].block, 2);
    }

    #[test]
    fn consistency_accepts_single_host() {
        let log = vec![
            DiskLogEntry {
                issued_at: t0(),
                host: 0,
                cmd: DiskCommand::Write,
                block: 1,
                status: DiskStatus::Complete,
                applied: true,
            };
            5
        ];
        // Identical repeated writes from one host are always fine (the
        // guest may legitimately rewrite a block).
        assert!(check_single_processor_consistency(&log).is_ok());
    }

    #[test]
    fn consistency_accepts_failover_with_uncertain_repeat() {
        let mk = |host, status| DiskLogEntry {
            issued_at: t0(),
            host,
            cmd: DiskCommand::Write,
            block: 7,
            status,
            applied: true,
        };
        let log = vec![mk(0, DiskStatus::Uncertain), mk(1, DiskStatus::Complete)];
        assert!(check_single_processor_consistency(&log).is_ok());
    }

    #[test]
    fn consistency_allows_cross_host_repeat() {
        // Indistinguishable from a legitimate re-write of the same block
        // (and tolerated by IO2 regardless), so not an anomaly.
        let mk = |host, status| DiskLogEntry {
            issued_at: t0(),
            host,
            cmd: DiskCommand::Write,
            block: 7,
            status,
            applied: true,
        };
        let log = vec![mk(0, DiskStatus::Complete), mk(1, DiskStatus::Complete)];
        assert!(check_single_processor_consistency(&log).is_ok());
    }

    #[test]
    fn consistency_rejects_switching_back() {
        let mk = |host, block| DiskLogEntry {
            issued_at: t0(),
            host,
            cmd: DiskCommand::Read,
            block,
            status: DiskStatus::Complete,
            applied: true,
        };
        let log = vec![mk(0, 1), mk(1, 2), mk(0, 3)];
        assert!(check_single_processor_consistency(&log).is_err());
    }

    #[test]
    fn consistency_accepts_cascading_hand_overs() {
        // A t = 2 system hands the disk down the chain: 0 → 1 → 2 is a
        // legal single-processor view; any return to an earlier host is
        // not.
        let mk = |host, block| DiskLogEntry {
            issued_at: t0(),
            host,
            cmd: DiskCommand::Write,
            block,
            status: DiskStatus::Complete,
            applied: true,
        };
        let ok = vec![mk(0, 1), mk(1, 2), mk(2, 3), mk(2, 4)];
        assert!(check_single_processor_consistency(&ok).is_ok());
        let bad = vec![mk(0, 1), mk(2, 2), mk(1, 3)];
        assert!(check_single_processor_consistency(&bad).is_err());
    }
}
