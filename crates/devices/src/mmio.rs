//! The memory-mapped I/O register map shared by guests and hosts.
//!
//! All device registers live in the physical I/O window (see
//! `hvft_machine::mem::IO_BASE`). Offsets here are relative to that base;
//! the guest mini-OS hard-codes the same constants in its driver.

/// Disk controller register block offset.
pub const DISK_BASE: u32 = 0x100;
/// Disk: target block number (read/write).
pub const DISK_REG_BLOCK: u32 = DISK_BASE;
/// Disk: DMA physical address in host RAM (read/write).
pub const DISK_REG_ADDR: u32 = DISK_BASE + 0x4;
/// Disk: command/GO register; writing a [`disk_cmd`] value starts the operation.
pub const DISK_REG_CMD: u32 = DISK_BASE + 0x8;
/// Disk: status register (read), a [`disk_status`] value.
pub const DISK_REG_STATUS: u32 = DISK_BASE + 0xC;

/// Console register block offset.
pub const CONSOLE_BASE: u32 = 0x200;
/// Console: transmit register; writing a byte emits it.
pub const CONSOLE_REG_TX: u32 = CONSOLE_BASE;
/// Console: status register (always ready in this model).
pub const CONSOLE_REG_STATUS: u32 = CONSOLE_BASE + 0x4;

/// Values written to [`DISK_REG_CMD`].
pub mod disk_cmd {
    /// Start a block read.
    pub const READ: u32 = 1;
    /// Start a block write.
    pub const WRITE: u32 = 2;
}

/// Values read from [`DISK_REG_STATUS`].
pub mod disk_status {
    /// No operation in flight and none completed since the last command.
    pub const IDLE: u32 = 0;
    /// Operation in flight.
    pub const BUSY: u32 = 1;
    /// Last operation completed successfully (IO1 completion interrupt).
    pub const DONE: u32 = 2;
    /// Last operation's outcome is uncertain (IO2 / SCSI
    /// `CHECK_CONDITION`); the driver must retry.
    pub const UNCERTAIN: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_blocks_do_not_overlap() {
        let disk = [DISK_REG_BLOCK, DISK_REG_ADDR, DISK_REG_CMD, DISK_REG_STATUS];
        let console = [CONSOLE_REG_TX, CONSOLE_REG_STATUS];
        for d in disk {
            for c in console {
                assert_ne!(d, c);
            }
        }
    }

    #[test]
    fn registers_are_word_aligned() {
        for r in [
            DISK_REG_BLOCK,
            DISK_REG_ADDR,
            DISK_REG_CMD,
            DISK_REG_STATUS,
            CONSOLE_REG_TX,
        ] {
            assert_eq!(r % 4, 0, "register {r:#x} must be aligned");
        }
    }
}
