//! The console device.
//!
//! The prototype attached a remote console over Ethernet "for control and
//! debugging" (paper §3, Figure 1). Ours is an output sink reached
//! through memory-mapped registers; its byte stream is part of the
//! *environment*, so tests use it to check that the outside world sees
//! output from exactly one virtual machine at a time — even across a
//! failover.

use hvft_sim::time::SimTime;

/// One logged console write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsoleEvent {
    /// When the byte was written.
    pub time: SimTime,
    /// Which host wrote it.
    pub host: u8,
    /// The byte.
    pub byte: u8,
}

/// An append-only console.
#[derive(Clone, Debug, Default)]
pub struct Console {
    events: Vec<ConsoleEvent>,
}

impl Console {
    /// Creates an empty console.
    pub fn new() -> Self {
        Console::default()
    }

    /// Writes one byte from `host` at time `now`.
    pub fn write(&mut self, now: SimTime, host: u8, byte: u8) {
        self.events.push(ConsoleEvent {
            time: now,
            host,
            byte,
        });
    }

    /// All bytes in arrival order.
    pub fn output(&self) -> Vec<u8> {
        self.events.iter().map(|e| e.byte).collect()
    }

    /// Output as a lossy string.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output()).into_owned()
    }

    /// The raw event log.
    pub fn events(&self) -> &[ConsoleEvent] {
        &self.events
    }

    /// The hosts that produced output, in order of first appearance.
    pub fn hosts_seen(&self) -> Vec<u8> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.host) {
                seen.push(e.host);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_output_in_order() {
        let mut c = Console::new();
        for (i, b) in b"hello".iter().enumerate() {
            c.write(SimTime::from_nanos(i as u64), 0, *b);
        }
        assert_eq!(c.output_string(), "hello");
        assert_eq!(c.events().len(), 5);
    }

    #[test]
    fn tracks_hosts() {
        let mut c = Console::new();
        c.write(SimTime::ZERO, 0, b'a');
        c.write(SimTime::ZERO, 0, b'b');
        c.write(SimTime::ZERO, 1, b'c');
        assert_eq!(c.hosts_seen(), vec![0, 1]);
    }

    #[test]
    fn empty_console() {
        let c = Console::new();
        assert!(c.output().is_empty());
        assert!(c.hosts_seen().is_empty());
    }
}
