//! `hvft-devices` — the simulated I/O environment.
//!
//! The paper's environment is a SCSI disk shared between the two
//! processors plus a remote console. Devices satisfy the §2.2 interface
//! contract (IO1 completion interrupts, IO2 uncertain interrupts with
//! ambiguous effect) and keep environment-visible logs so the test suite
//! can check that failovers are invisible to the outside world.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod console;
pub mod disk;
pub mod mmio;

pub use console::{Console, ConsoleEvent};
pub use disk::{
    check_single_processor_consistency, Disk, DiskCommand, DiskError, DiskLogEntry, DiskSnapshot,
    DiskStatus, BLOCK_SIZE,
};
