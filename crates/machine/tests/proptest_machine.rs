//! Property tests for the machine: interpreter determinism (the
//! Ordinary Instruction Assumption) and TLB model conformance.

use hvft_isa::codec::encode;
use hvft_isa::instruction::{AluImmOp, AluOp, Instruction};
use hvft_isa::reg::Reg;
use hvft_machine::cpu::{Cpu, Exit};
use hvft_machine::mem::Memory;
use hvft_machine::statehash::vm_state_hash;
use hvft_machine::tlb::{pte, Tlb, TlbAccess, TlbReplacement, TlbResult};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_ordinary() -> impl Strategy<Value = Instruction> {
    // A pool of ordinary instructions that cannot trap (registers are
    // arbitrary, addresses constrained to low RAM via masking sequences).
    let reg = (1u8..30).prop_map(Reg::of);
    prop_oneof![
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Sll),
                Just(AluOp::Srl),
                Just(AluOp::Sra),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Mul),
            ],
            reg.clone(),
            reg.clone(),
            reg.clone()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), -8192i32..=8191).prop_map(|(rd, rs1, imm)| {
            Instruction::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1,
                imm,
            }
        }),
        (reg.clone(), reg.clone(), 0i32..=16383).prop_map(|(rd, rs1, imm)| {
            Instruction::AluImm {
                op: AluImmOp::Andi,
                rd,
                rs1,
                imm,
            }
        }),
        (reg.clone(), 0u32..(1 << 19)).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        Just(Instruction::Nop),
    ]
}

/// Executes a program of ordinary instructions and returns the state
/// hash at the end.
fn run_program(insns: &[Instruction], seed: u64) -> u64 {
    let mut cpu = Cpu::new(16, TlbReplacement::Random, seed);
    let mut mem = Memory::new(1 << 16);
    let mut addr = 0u32;
    for &i in insns {
        mem.write_u32(addr, encode(i).unwrap()).unwrap();
        addr += 4;
    }
    mem.write_u32(addr, encode(Instruction::Halt).unwrap())
        .unwrap();
    loop {
        match cpu.step(&mut mem) {
            Exit::Retired => {}
            Exit::Halt => break,
            other => panic!("unexpected exit {other:?}"),
        }
    }
    vm_state_hash(&cpu, &mem)
}

proptest! {
    #[test]
    fn ordinary_instructions_are_deterministic(
        insns in prop::collection::vec(arb_ordinary(), 0..200),
    ) {
        // The Ordinary Instruction Assumption: same program, same initial
        // state → bit-identical final state, regardless of the machine's
        // hidden non-determinism (here: the TLB replacement seed).
        let a = run_program(&insns, 1);
        let b = run_program(&insns, 99);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tlb_conforms_to_reference_model(
        ops in prop::collection::vec(
            // (vpn, is_insert, purge_all)
            (0u32..64, any::<bool>(), prop::bool::weighted(0.02)),
            1..300,
        ),
        slots in 1usize..32,
    ) {
        let mut tlb = Tlb::new(slots, TlbReplacement::RoundRobin, 0);
        // Reference: map of present translations; capacity enforced by
        // checking the subset property rather than exact contents.
        let mut reference: HashMap<u32, u32> = HashMap::new();
        for (vpn, is_insert, purge_all) in ops {
            if purge_all {
                tlb.purge_all();
                reference.clear();
            } else if is_insert {
                let word = (vpn << 12) | pte::V | pte::R;
                tlb.insert_pte(vpn << 12, word);
                reference.insert(vpn, vpn);
            } else {
                match tlb.lookup(vpn << 12, TlbAccess::Read, false) {
                    TlbResult::Hit(pa) => {
                        // Any hit must agree with the reference mapping.
                        let expect = reference.get(&vpn);
                        let frame = pa >> 12;
                        prop_assert_eq!(expect, Some(&frame),
                            "hit frame {} disagrees with reference", frame);
                    }
                    TlbResult::Miss => {
                        // Misses are always allowed (capacity evictions).
                    }
                    TlbResult::Denied => {
                        return Err(TestCaseError::fail("R-only entry denied a read"));
                    }
                }
            }
            prop_assert!(tlb.occupancy() <= tlb.capacity());
        }
    }

    #[test]
    fn last_inserted_entry_is_always_present(
        preload in prop::collection::vec(0u32..1000, 0..100),
        last in 0u32..1000,
        slots in 1usize..16,
        policy_random in any::<bool>(),
    ) {
        let policy = if policy_random { TlbReplacement::Random } else { TlbReplacement::RoundRobin };
        let mut tlb = Tlb::new(slots, policy, 7);
        for vpn in preload {
            tlb.insert_pte(vpn << 12, (vpn << 12) | pte::V | pte::R);
        }
        tlb.insert_pte(last << 12, (last << 12) | pte::V | pte::R);
        // Whatever got evicted, the most recent insert must be resident.
        prop_assert!(matches!(
            tlb.lookup(last << 12, TlbAccess::Read, false),
            TlbResult::Hit(_)
        ));
    }
}
