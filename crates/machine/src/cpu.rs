//! The CPU interpreter.
//!
//! [`Cpu::step`] executes at most one instruction and reports anything the
//! embedding layer must handle as an [`Exit`]. Two embedders exist:
//!
//! - the **bare machine** (`hvft-hypervisor::bare`): handles exits the way
//!   real hardware + firmware would (environment instructions execute
//!   against the real clock, traps vector through the guest's IVT);
//! - the **hypervisor** (`hvft-hypervisor::hv`): simulates privileged and
//!   environment instructions so their effects are identical at primary
//!   and backup, and uses the recovery-counter exit to delimit epochs.
//!
//! The split keeps the CPU policy-free: it knows nothing about devices,
//! wall-clock time, or replication.

use crate::block::{BlockCache, BlockCacheStats};
use crate::exec::{ExecDispatcher, ExecStats, ExecTier};
use crate::jit::Lookup;
use crate::mem::{MemFault, Memory, PAGE_SHIFT};
use crate::psw::Psw;
use crate::tlb::{Tlb, TlbAccess, TlbReplacement, TlbResult};
use crate::trap::Trap;
use hvft_isa::codec::decode;
use hvft_isa::instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
use hvft_isa::reg::{ControlReg, Reg};

/// Number of control registers.
const NUM_CTL: usize = 10;

/// Three-register ALU semantics; `None` flags division by zero (an
/// arithmetic trap). Shared by the step, block and jit paths so the
/// three cannot drift (the jit's specialized handlers call this with a
/// constant `op`, which folds away after inlining).
#[inline]
pub(crate) fn alu_value(op: AluOp, a: u32, b: u32) -> Option<u32> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Divu => {
            if b == 0 {
                return None;
            }
            a / b
        }
        AluOp::Remu => {
            if b == 0 {
                return None;
            }
            a % b
        }
    })
}

/// Register-immediate ALU semantics; shared by all execution paths.
#[inline]
pub(crate) fn alu_imm_value(op: AluImmOp, a: u32, imm: i32) -> u32 {
    match op {
        AluImmOp::Addi => a.wrapping_add(imm as u32),
        AluImmOp::Andi => a & (imm as u32),
        AluImmOp::Ori => a | (imm as u32),
        AluImmOp::Xori => a ^ (imm as u32),
        AluImmOp::Slti => u32::from((a as i32) < imm),
        AluImmOp::Slli => a.wrapping_shl(imm as u32),
        AluImmOp::Srli => a.wrapping_shr(imm as u32),
        AluImmOp::Srai => ((a as i32).wrapping_shr(imm as u32)) as u32,
    }
}

/// An environment operation the embedder must complete.
///
/// These correspond exactly to the paper's *environment instructions*:
/// their results depend on state outside the virtual machine (clocks),
/// so under replication the hypervisor must supply identical results to
/// both virtual machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnvOp {
    /// `mftod rd`: read low word of the time-of-day clock.
    ReadTod {
        /// Destination register.
        rd: Reg,
    },
    /// `mftodh rd`: read high word of the time-of-day clock.
    ReadTodHigh {
        /// Destination register.
        rd: Reg,
    },
    /// `mtit rs`: arm the interval timer for `value` microseconds.
    SetTimer {
        /// Countdown in microseconds.
        value: u32,
    },
    /// `mfit rd`: read remaining microseconds of the interval timer.
    ReadTimer {
        /// Destination register.
        rd: Reg,
    },
}

/// Why [`Cpu::step`] returned without simply retiring an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Exit {
    /// The instruction retired normally.
    Retired,
    /// A trap must be handled. For restarting traps (`Trap::restarts`)
    /// the PC still addresses the faulting instruction; for `gate`/`brk`
    /// the instruction has retired and the PC addresses its successor.
    Trap(Trap),
    /// An environment instruction at privilege 0 needs the embedder.
    /// Complete with [`Cpu::complete_env_read`] or
    /// [`Cpu::complete_env_effect`].
    Env(EnvOp),
    /// A load reached the memory-mapped I/O window. Complete with
    /// [`Cpu::complete_mmio_read`].
    MmioRead {
        /// Physical address in the I/O window.
        paddr: u32,
        /// Access width.
        width: MemWidth,
        /// Destination register.
        rd: Reg,
    },
    /// A store reached the memory-mapped I/O window. Complete with
    /// [`Cpu::complete_env_effect`].
    MmioWrite {
        /// Physical address in the I/O window.
        paddr: u32,
        /// Access width.
        width: MemWidth,
        /// Value to store (byte stores pass the low 8 bits).
        value: u32,
    },
    /// `halt` at privilege 0: the processor stops. Never retires.
    Halt,
    /// `idle` at privilege 0: wait for an external interrupt. Complete
    /// with [`Cpu::complete_env_effect`] once the wait is over.
    Idle,
    /// `diag` at privilege 0: a harness escape. Complete with
    /// [`Cpu::complete_env_effect`].
    Diag {
        /// Value of the argument register.
        value: u32,
        /// Immediate marker code.
        code: u32,
    },
}

/// The processor: registers, PSW, control registers and TLB.
///
/// # Examples
///
/// ```
/// use hvft_machine::cpu::{Cpu, Exit, LoadProgram};
/// use hvft_machine::mem::Memory;
/// use hvft_isa::asm::assemble;
///
/// let prog = assemble(".org 0\nstart: addi r5, r0, 3\n halt\n").unwrap();
/// let mut mem = Memory::new(4096);
/// let mut cpu = Cpu::new(16, hvft_machine::tlb::TlbReplacement::RoundRobin, 0);
/// prog.load_into_cpu(&mut cpu, &mut mem);
/// assert_eq!(cpu.step(&mut mem), Exit::Retired);
/// assert_eq!(cpu.reg(hvft_isa::reg::Reg::of(5)), 3);
/// assert_eq!(cpu.step(&mut mem), Exit::Halt);
/// ```
pub struct Cpu {
    regs: [u32; 32],
    /// Program counter (address of the next instruction).
    pub pc: u32,
    /// Processor status word.
    pub psw: Psw,
    ctl: [u32; NUM_CTL],
    /// The translation lookaside buffer.
    pub tlb: Tlb,
    retired: u64,
    /// Execution-tier dispatcher backing [`Cpu::run`]: the selected
    /// [`ExecTier`] plus the block and superblock caches.
    exec: ExecDispatcher,
}

/// Extension trait so programs can be loaded straight into a CPU+memory
/// pair.
pub trait LoadProgram {
    /// Loads the image into memory and points the CPU at the entry.
    fn load_into_cpu(&self, cpu: &mut Cpu, mem: &mut Memory);
}

impl LoadProgram for hvft_isa::program::Program {
    fn load_into_cpu(&self, cpu: &mut Cpu, mem: &mut Memory) {
        for seg in &self.segments {
            mem.write_bytes(seg.base, &seg.data);
        }
        cpu.pc = self.entry;
    }
}

impl Cpu {
    /// Creates a reset CPU with a TLB of `tlb_slots` entries.
    pub fn new(tlb_slots: usize, policy: TlbReplacement, tlb_seed: u64) -> Self {
        Cpu {
            regs: [0; 32],
            pc: 0,
            psw: Psw::reset(),
            ctl: [0; NUM_CTL],
            tlb: Tlb::new(tlb_slots, policy, tlb_seed),
            retired: 0,
            exec: ExecDispatcher::default(),
        }
    }

    /// Selects the execution engine behind [`Cpu::run`]. All tiers are
    /// observably identical — same exits at the same retirement counts
    /// with the same machine state; the knob exists for differential
    /// testing and performance work.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.exec.tier = tier;
    }

    /// The execution tier [`Cpu::run`] currently uses.
    pub fn exec_tier(&self) -> ExecTier {
        self.exec.tier
    }

    /// Legacy two-way switch: `true` selects [`ExecTier::Block`],
    /// `false` the single-step reference tier.
    pub fn set_block_execution(&mut self, enabled: bool) {
        self.exec.tier = if enabled {
            ExecTier::Block
        } else {
            ExecTier::Step
        };
    }

    /// Whether a batching engine (block or jit) is enabled.
    pub fn block_execution(&self) -> bool {
        self.exec.tier != ExecTier::Step
    }

    /// Block-cache behaviour counters.
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.exec.blocks.stats()
    }

    /// Per-tier execution counters since reset.
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.stats
    }

    /// Reads a general-purpose register (`r0` reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a general-purpose register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.index() != 0 {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Reads a control register.
    pub fn ctl(&self, cr: ControlReg) -> u32 {
        self.ctl[cr.index() as usize]
    }

    /// Writes a control register directly (embedder/hypervisor use).
    pub fn set_ctl(&mut self, cr: ControlReg, value: u32) {
        self.ctl[cr.index() as usize] = value;
    }

    /// Asserts external-interrupt request bits (`eirr |= bits`).
    pub fn raise_irq(&mut self, bits: u32) {
        self.ctl[ControlReg::Eirr.index() as usize] |= bits;
    }

    /// Pending *enabled* interrupt bits (`eirr & eiem`).
    pub fn pending_irq(&self) -> u32 {
        self.ctl(ControlReg::Eirr) & self.ctl(ControlReg::Eiem)
    }

    /// Total retired instructions since reset.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// All 32 general-purpose registers (for hashing and debug).
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// All control registers in index order (for hashing and debug).
    pub fn ctl_raw(&self) -> &[u32; NUM_CTL] {
        &self.ctl
    }

    /// Captures the architectural CPU state (plus the cumulative
    /// [`ExecStats`]) for a whole-machine snapshot. The block and
    /// superblock caches are derived state and are not captured.
    pub fn snapshot(&self) -> crate::snapshot::CpuSnapshot {
        crate::snapshot::CpuSnapshot {
            regs: self.regs,
            pc: self.pc,
            psw: self.psw,
            ctl: self.ctl,
            retired: self.retired,
            tier: self.exec.tier,
            exec_stats: self.exec.stats,
            tlb: self.tlb.snapshot_state(),
        }
    }

    /// Restores state captured by [`Cpu::snapshot`]. The dispatcher is
    /// replaced with a cold one (same tier, counters carried over):
    /// blocks and superblocks recompile on demand, which changes cache
    /// statistics but never architectural behaviour.
    pub fn restore(&mut self, snap: &crate::snapshot::CpuSnapshot) {
        self.regs = snap.regs;
        self.pc = snap.pc;
        self.psw = snap.psw;
        self.ctl = snap.ctl;
        self.retired = snap.retired;
        self.tlb.restore_state(&snap.tlb);
        self.exec = ExecDispatcher::default();
        self.exec.tier = snap.tier;
        self.exec.stats = snap.exec_stats;
    }

    // -----------------------------------------------------------------
    // Trap delivery and completion helpers
    // -----------------------------------------------------------------

    /// Vectors the CPU through its interrupt vector table for `trap`,
    /// exactly as the hardware would: saves PSW/PC, enters privilege 0
    /// with translation and interrupts off, jumps to `iva + 32 * vector`.
    ///
    /// The recovery-counter enable is preserved: under the hypervisor all
    /// guest execution is counted, handlers included.
    pub fn deliver_trap(&mut self, trap: Trap) {
        self.set_ctl(ControlReg::Ipsw, self.psw.pack());
        self.set_ctl(ControlReg::Iip, self.pc);
        self.set_ctl(ControlReg::TrapArg, trap.trap_arg());
        self.psw = Psw::handler_entry(self.psw.recovery);
        self.pc = self.ctl(ControlReg::Iva) + 32 * trap.vector();
    }

    /// Like [`Cpu::deliver_trap`] but enters at the given privilege level
    /// instead of 0 — the hypervisor uses this to reflect traps into the
    /// guest kernel, which runs at real level 1 (paper §3.1's
    /// privilege-level mapping).
    pub fn deliver_trap_at(&mut self, trap: Trap, level: u8) {
        self.deliver_trap(trap);
        self.psw.cpl = level;
    }

    /// Completes an [`Exit::Env`] or [`Exit::MmioRead`]-style exit that
    /// produces a register value, then retires the instruction.
    pub fn complete_env_read(&mut self, rd: Reg, value: u32) {
        self.set_reg(rd, value);
        self.retire_next();
    }

    /// Completes an exit whose effect is external (timer arm, MMIO write,
    /// `idle` wake-up, `diag`), then retires the instruction.
    pub fn complete_env_effect(&mut self) {
        self.retire_next();
    }

    /// Completes an [`Exit::MmioRead`], applying width extension.
    pub fn complete_mmio_read(&mut self, rd: Reg, width: MemWidth, value: u32) {
        let v = match width {
            MemWidth::Word => value,
            MemWidth::Byte => (value as u8) as i8 as i32 as u32,
            MemWidth::ByteU => u32::from(value as u8),
        };
        self.complete_env_read(rd, v);
    }

    /// Skips the instruction at PC without executing it (hypervisor use,
    /// after simulating a privileged instruction).
    pub fn retire_skip(&mut self) {
        self.retire_next();
    }

    /// Retires the current instruction with an explicit successor PC
    /// (hypervisor use, e.g. when simulating `rfi`).
    pub fn retire_to(&mut self, next_pc: u32) {
        self.retire_at(next_pc);
    }

    #[inline]
    fn retire_at(&mut self, next_pc: u32) {
        self.pc = next_pc;
        self.retired += 1;
        if self.psw.recovery {
            let rctr = self.ctl(ControlReg::Rctr);
            // Saturate at zero; the pre-step check raises the trap.
            self.set_ctl(ControlReg::Rctr, rctr.saturating_sub(1));
        }
    }

    #[inline]
    fn retire_next(&mut self) {
        self.retire_at(self.pc.wrapping_add(4));
    }

    // -----------------------------------------------------------------
    // Address translation
    // -----------------------------------------------------------------

    /// Translates a virtual address for the given access, honouring the
    /// PSW translation bit and privilege level.
    #[inline]
    pub fn translate(&mut self, vaddr: u32, access: TlbAccess) -> Result<u32, Trap> {
        if !self.psw.translation {
            return Ok(vaddr);
        }
        let user = self.psw.is_user();
        match self.tlb.lookup(vaddr, access, user) {
            TlbResult::Hit(p) => Ok(p),
            TlbResult::Miss => Err(Trap::TlbMiss {
                vaddr,
                write: access == TlbAccess::Write,
            }),
            TlbResult::Denied => Err(Trap::AccessFault {
                vaddr,
                write: access == TlbAccess::Write,
            }),
        }
    }

    /// Side-effect-free translation probe for derived-cache validation:
    /// the same outcome as [`Cpu::translate`] with every non-hit folded
    /// to `None`, but touching neither the TLB's front cache nor its
    /// hit/miss counters. The jit validates cross-page traces on every
    /// entry, and validation frequency depends on cache warmth — state
    /// that snapshot/restore deliberately drops — so it must not leak
    /// into the snapshotted accounting.
    #[inline]
    pub(crate) fn peek_translate(&self, vaddr: u32, access: TlbAccess) -> Option<u32> {
        if !self.psw.translation {
            return Some(vaddr);
        }
        match self.tlb.peek_lookup(vaddr, access, self.psw.is_user()) {
            TlbResult::Hit(p) => Some(p),
            TlbResult::Miss | TlbResult::Denied => None,
        }
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    /// Executes at most one instruction.
    ///
    /// Pre-execution checks, in priority order:
    /// 1. recovery-counter expiry (epoch boundary) when `psw.recovery`;
    /// 2. pending enabled external interrupt when `psw.interrupts`.
    ///
    /// Both are reported as [`Exit::Trap`] *without* executing the
    /// instruction at PC; the embedder decides how to deliver them.
    pub fn step(&mut self, mem: &mut Memory) -> Exit {
        if self.psw.recovery && self.ctl(ControlReg::Rctr) == 0 {
            return Exit::Trap(Trap::RecoveryCounter);
        }
        if self.psw.interrupts && self.pending_irq() != 0 {
            return Exit::Trap(Trap::ExternalInterrupt);
        }

        // Fetch.
        if !self.pc.is_multiple_of(4) {
            return Exit::Trap(Trap::AlignmentFault { vaddr: self.pc });
        }
        let fetch_pa = match self.translate(self.pc, TlbAccess::Execute) {
            Ok(p) => p,
            Err(t) => return Exit::Trap(t),
        };
        let word = match mem.read_u32(fetch_pa) {
            Ok(w) => w,
            Err(MemFault::Io { paddr } | MemFault::Unmapped { paddr }) => {
                return Exit::Trap(Trap::AccessFault {
                    vaddr: paddr,
                    write: false,
                });
            }
        };
        let insn = match decode(word) {
            Ok(i) => i,
            Err(_) => return Exit::Trap(Trap::IllegalInstruction { word }),
        };

        // Privilege check.
        if insn.is_privileged() && self.psw.cpl != 0 {
            return Exit::Trap(Trap::PrivilegedOp { word });
        }

        self.execute(insn, word, mem)
    }

    /// Executes up to `max_insns` instructions (counted by retirement)
    /// through the selected execution tier, returning at the first exit
    /// the embedder must handle, or [`Exit::Retired`] once the budget
    /// is consumed.
    ///
    /// Every tier is observably identical — same exits at the same
    /// retirement counts with the same machine state — to calling
    /// [`Cpu::step`] in a loop `max_insns` times and stopping at the
    /// first non-retired exit. See [`crate::block`] and [`crate::jit`]
    /// for why the batching cannot move an epoch boundary or an
    /// interrupt-delivery point.
    pub fn run(&mut self, mem: &mut Memory, max_insns: u64) -> Exit {
        let goal = self.retired.saturating_add(max_insns);
        // Move the dispatcher out of `self` so blocks can be borrowed
        // from its caches while `execute` borrows `self` — no
        // refcounting or copying on the hot path.
        let mut d = std::mem::take(&mut self.exec);
        let before = self.retired;
        let exit = match d.tier {
            ExecTier::Step => {
                let mut e = Exit::Retired;
                while self.retired < goal {
                    e = self.step(mem);
                    if e != Exit::Retired {
                        break;
                    }
                }
                d.stats.step_retired += self.retired - before;
                e
            }
            ExecTier::Block => {
                let e = self.run_blocks(&mut d.blocks, mem, goal);
                d.stats.block_retired += self.retired - before;
                e
            }
            ExecTier::Jit => self.run_tiered(&mut d, mem, goal),
        };
        self.exec = d;
        exit
    }

    /// Pre-dispatch checks shared by every engine, identical to the
    /// first checks of [`Cpu::step`]: recovery-counter expiry, pending
    /// enabled interrupt, PC alignment. Nothing inside a block or
    /// superblock can change their inputs (every PSW/ctl/TLB writer is
    /// privileged, hence excluded from batched bodies), so checking
    /// once per dispatch equals checking once per step.
    #[inline]
    fn pre_dispatch_check(&self) -> Option<Exit> {
        if self.psw.recovery && self.ctl(ControlReg::Rctr) == 0 {
            return Some(Exit::Trap(Trap::RecoveryCounter));
        }
        if self.psw.interrupts && self.pending_irq() != 0 {
            return Some(Exit::Trap(Trap::ExternalInterrupt));
        }
        if !self.pc.is_multiple_of(4) {
            return Some(Exit::Trap(Trap::AlignmentFault { vaddr: self.pc }));
        }
        None
    }

    fn run_blocks(&mut self, cache: &mut BlockCache, mem: &mut Memory, goal: u64) -> Exit {
        while self.retired < goal {
            if let Some(e) = self.pre_dispatch_check() {
                return e;
            }
            // One translation covers the whole block: blocks never
            // cross a page boundary.
            let fetch_pa = match self.translate(self.pc, TlbAccess::Execute) {
                Ok(p) => p,
                Err(t) => return Exit::Trap(t),
            };
            if let Some(e) = self.block_iteration(cache, mem, goal, fetch_pa) {
                return e;
            }
        }
        Exit::Retired
    }

    /// The jit tier: compiled superblocks where they exist, the block
    /// engine everywhere else (cold code, traps, uncompilable starts).
    fn run_tiered(&mut self, d: &mut ExecDispatcher, mem: &mut Memory, goal: u64) -> Exit {
        while self.retired < goal {
            if let Some(e) = self.pre_dispatch_check() {
                return e;
            }
            // One translation covers the superblock's *entry* page; a
            // cross-page trace records its secondary (page, generation)
            // pairs and the probe re-validates every one before the
            // compiled code is entered.
            let fetch_pa = match self.translate(self.pc, TlbAccess::Execute) {
                Ok(p) => p,
                Err(t) => return Exit::Trap(t),
            };
            match d.jit.probe(fetch_pa, self, mem, &mut d.stats) {
                Lookup::Compiled(first) => {
                    // Clamp so the recovery counter can only expire
                    // *between* instructions, exactly where the
                    // per-step path traps — internal superblock loop
                    // iterations and chained superblocks spend this
                    // budget like any other op, so the dispatcher
                    // re-checks at the exact retirement count.
                    let mut budget = goal - self.retired;
                    if self.psw.recovery {
                        budget = budget.min(u64::from(self.ctl(ControlReg::Rctr)));
                    }
                    let (executed, exit) = d.jit.run_chain(first, self, mem, budget, &mut d.stats);
                    d.stats.jit_retired += executed;
                    if let Some(e) = exit {
                        return e;
                    }
                }
                Lookup::Cold => {
                    let before = self.retired;
                    let r = self.block_iteration(&mut d.blocks, mem, goal, fetch_pa);
                    d.stats.block_retired += self.retired - before;
                    if let Some(e) = r {
                        return e;
                    }
                }
            }
        }
        Exit::Retired
    }

    /// One block-engine dispatch: executes the block at `fetch_pa` (at
    /// most to `goal`), returning `Some(exit)` to surface an exit or
    /// `None` to re-enter the dispatch loop.
    fn block_iteration(
        &mut self,
        cache: &mut BlockCache,
        mem: &mut Memory,
        goal: u64,
        fetch_pa: u32,
    ) -> Option<Exit> {
        let Some(block) = cache.get_or_build(fetch_pa, mem) else {
            // Unreadable or undecodable first word: the slow path
            // raises the exact trap.
            return Some(self.step(mem));
        };
        // Clamp so the recovery counter can only expire *between*
        // instructions, exactly where the per-step path traps.
        let len = block.insns.len();
        let mut n = (goal - self.retired).min(len as u64);
        if self.psw.recovery {
            n = n.min(u64::from(self.ctl(ControlReg::Rctr)));
        }
        let n = n as usize;
        // Only a block's final instruction can be a terminator, so
        // the straight-line prefix is terminator-free — and since
        // every privileged instruction is a terminator, it is also
        // privilege-check-free. Retirement bookkeeping (pc,
        // retired, rctr) for the prefix is batched: instructions in
        // the prefix never observe those registers, and every path
        // that leaves the prefix syncs them first, so the batching
        // is invisible.
        let has_term = n == len && block.insns[n - 1].is_block_terminator();
        let straight = if has_term { n - 1 } else { n };
        let base_pc = self.pc;
        let block_gen = block.gen;
        let block_page_addr = fetch_pa & !((1u32 << PAGE_SHIFT) - 1);
        for (done, &insn) in block.insns[..straight].iter().enumerate() {
            use Instruction as I;
            match insn {
                I::Alu { op, rd, rs1, rs2 } => {
                    let a = self.reg(rs1);
                    let b = self.reg(rs2);
                    match alu_value(op, a, b) {
                        Some(v) => self.set_reg(rd, v),
                        None => {
                            self.sync_batch(base_pc, done);
                            return Some(Exit::Trap(Trap::ArithmeticError));
                        }
                    }
                }
                I::AluImm { op, rd, rs1, imm } => {
                    let v = alu_imm_value(op, self.reg(rs1), imm);
                    self.set_reg(rd, v);
                }
                I::Lui { rd, imm } => self.set_reg(rd, imm << 13),
                I::Nop => {}
                I::Load {
                    width,
                    rd,
                    base,
                    disp,
                } => match self.access_load(width, rd, base, disp, mem) {
                    Ok(v) => self.set_reg(rd, v),
                    Err(exit) => {
                        self.sync_batch(base_pc, done);
                        return Some(exit);
                    }
                },
                I::Store {
                    width,
                    rs,
                    base,
                    disp,
                } => match self.access_store(width, rs, base, disp, mem) {
                    Ok(()) => {
                        // The store may have patched this block's
                        // own page ahead of the program counter;
                        // abandon the predecoded tail and re-fetch.
                        if mem.page_gen(block_page_addr) != block_gen {
                            self.sync_batch(base_pc, done + 1);
                            return None;
                        }
                    }
                    Err(exit) => {
                        self.sync_batch(base_pc, done);
                        return Some(exit);
                    }
                },
                // Probe (the only other non-terminator) and any
                // future stragglers: sync and take the generic
                // per-instruction path, then re-enter the block
                // machinery from the next pc.
                other => {
                    self.sync_batch(base_pc, done);
                    let e = self.execute(other, block.words[done], mem);
                    if e != Exit::Retired {
                        return Some(e);
                    }
                    return None;
                }
            }
        }
        self.sync_batch(base_pc, straight);
        if has_term {
            let insn = block.insns[n - 1];
            if insn.is_privileged() && self.psw.cpl != 0 {
                return Some(Exit::Trap(Trap::PrivilegedOp {
                    word: block.words[n - 1],
                }));
            }
            let e = self.execute(insn, block.words[n - 1], mem);
            if e != Exit::Retired {
                return Some(e);
            }
        }
        None
    }

    /// Load semantics shared by [`Cpu::step`], the block engine and
    /// the jit so they cannot drift: alignment check, translation,
    /// access and
    /// width extension. `Ok` is the value for `rd`; `Err` is the exit
    /// (trap or MMIO) the caller must surface. Retirement is the
    /// caller's job.
    #[inline]
    pub(crate) fn access_load(
        &mut self,
        width: MemWidth,
        rd: Reg,
        base: Reg,
        disp: i32,
        mem: &Memory,
    ) -> Result<u32, Exit> {
        let vaddr = self.reg(base).wrapping_add(disp as u32);
        if width == MemWidth::Word && !vaddr.is_multiple_of(4) {
            return Err(Exit::Trap(Trap::AlignmentFault { vaddr }));
        }
        let paddr = self.translate(vaddr, TlbAccess::Read).map_err(Exit::Trap)?;
        let result = match width {
            MemWidth::Word => mem.read_u32(paddr),
            MemWidth::Byte | MemWidth::ByteU => mem.read_u8(paddr).map(u32::from),
        };
        match result {
            Ok(raw) => Ok(match width {
                MemWidth::Word | MemWidth::ByteU => raw,
                MemWidth::Byte => (raw as u8) as i8 as i32 as u32,
            }),
            Err(MemFault::Io { paddr }) => Err(Exit::MmioRead { paddr, width, rd }),
            Err(MemFault::Unmapped { paddr }) => Err(Exit::Trap(Trap::AccessFault {
                vaddr: paddr,
                write: false,
            })),
        }
    }

    /// Store counterpart of [`Cpu::access_load`], equally shared by
    /// all engines. `Ok(())` means the store hit RAM; `Err` is the
    /// exit to surface. Retirement is the caller's job.
    #[inline]
    pub(crate) fn access_store(
        &mut self,
        width: MemWidth,
        rs: Reg,
        base: Reg,
        disp: i32,
        mem: &mut Memory,
    ) -> Result<(), Exit> {
        let vaddr = self.reg(base).wrapping_add(disp as u32);
        if width == MemWidth::Word && !vaddr.is_multiple_of(4) {
            return Err(Exit::Trap(Trap::AlignmentFault { vaddr }));
        }
        let paddr = self
            .translate(vaddr, TlbAccess::Write)
            .map_err(Exit::Trap)?;
        let value = self.reg(rs);
        let result = match width {
            MemWidth::Word => mem.write_u32(paddr, value),
            MemWidth::Byte | MemWidth::ByteU => mem.write_u8(paddr, value as u8),
        };
        match result {
            Ok(()) => Ok(()),
            Err(MemFault::Io { paddr }) => Err(Exit::MmioWrite {
                paddr,
                width,
                value,
            }),
            Err(MemFault::Unmapped { paddr }) => Err(Exit::Trap(Trap::AccessFault {
                vaddr: paddr,
                write: true,
            })),
        }
    }

    /// Folds a batch of `done` straight-line retirements into the
    /// architectural state: pc, retired count, and the recovery
    /// counter. `done` never exceeds the block-entry clamp, so the
    /// recovery counter cannot underflow.
    #[inline]
    fn sync_batch(&mut self, base_pc: u32, done: usize) {
        self.pc = base_pc.wrapping_add(done as u32 * 4);
        self.retired += done as u64;
        if self.psw.recovery && done > 0 {
            let rctr = self.ctl(ControlReg::Rctr);
            self.set_ctl(ControlReg::Rctr, rctr - done as u32);
        }
    }

    /// Folds `done` retirements from a superblock run into the
    /// architectural state (retired count and recovery counter); the
    /// PC is set by the superblock's exit path, which may have jumped,
    /// so it cannot be derived from a base the way [`Cpu::sync_batch`]
    /// does. `done` never exceeds the superblock-entry clamp, so the
    /// recovery counter cannot underflow.
    #[inline]
    pub(crate) fn sync_retire(&mut self, done: u64) {
        self.retired += done;
        if self.psw.recovery && done > 0 {
            let rctr = self.ctl(ControlReg::Rctr);
            self.set_ctl(ControlReg::Rctr, rctr - done as u32);
        }
    }

    fn execute(&mut self, insn: Instruction, _word: u32, mem: &mut Memory) -> Exit {
        use Instruction as I;
        match insn {
            I::Alu { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let Some(v) = alu_value(op, a, b) else {
                    return Exit::Trap(Trap::ArithmeticError);
                };
                self.set_reg(rd, v);
                self.retire_next();
                Exit::Retired
            }
            I::AluImm { op, rd, rs1, imm } => {
                let v = alu_imm_value(op, self.reg(rs1), imm);
                self.set_reg(rd, v);
                self.retire_next();
                Exit::Retired
            }
            I::Lui { rd, imm } => {
                self.set_reg(rd, imm << 13);
                self.retire_next();
                Exit::Retired
            }
            I::Load {
                width,
                rd,
                base,
                disp,
            } => match self.access_load(width, rd, base, disp, mem) {
                Ok(v) => {
                    self.set_reg(rd, v);
                    self.retire_next();
                    Exit::Retired
                }
                Err(exit) => exit,
            },
            I::Store {
                width,
                rs,
                base,
                disp,
            } => match self.access_store(width, rs, base, disp, mem) {
                Ok(()) => {
                    self.retire_next();
                    Exit::Retired
                }
                Err(exit) => exit,
            },
            I::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                let next = if taken {
                    self.pc.wrapping_add(offset as u32)
                } else {
                    self.pc.wrapping_add(4)
                };
                self.retire_at(next);
                Exit::Retired
            }
            I::Jal { rd, offset } => {
                // PA-RISC quirk: the privilege level rides in the low bits
                // of the return address (paper §3.1).
                let link = self.pc.wrapping_add(4) | u32::from(self.psw.cpl);
                let target = self.pc.wrapping_add(offset as u32);
                self.set_reg(rd, link);
                self.retire_at(target);
                Exit::Retired
            }
            I::Jalr { rd, base, disp } => {
                let target = self.reg(base).wrapping_add(disp as u32) & !3;
                let link = self.pc.wrapping_add(4) | u32::from(self.psw.cpl);
                self.set_reg(rd, link);
                self.retire_at(target);
                Exit::Retired
            }
            I::MfTod { rd } => Exit::Env(EnvOp::ReadTod { rd }),
            I::MfTodH { rd } => Exit::Env(EnvOp::ReadTodHigh { rd }),
            I::MtIt { rs } => Exit::Env(EnvOp::SetTimer {
                value: self.reg(rs),
            }),
            I::MfIt { rd } => Exit::Env(EnvOp::ReadTimer { rd }),
            I::MtCtl { cr, rs } => {
                let v = self.reg(rs);
                if cr == ControlReg::Eirr {
                    // Write-one-to-clear, so handlers can acknowledge.
                    let cur = self.ctl(ControlReg::Eirr);
                    self.set_ctl(ControlReg::Eirr, cur & !v);
                } else {
                    self.set_ctl(cr, v);
                }
                self.retire_next();
                Exit::Retired
            }
            I::MfCtl { rd, cr } => {
                let v = self.ctl(cr);
                self.set_reg(rd, v);
                self.retire_next();
                Exit::Retired
            }
            I::Rfi => {
                let psw = Psw::unpack(self.ctl(ControlReg::Ipsw));
                let pc = self.ctl(ControlReg::Iip);
                // RFI is a retirement too, but the target PC comes from
                // iip; count it before switching context.
                self.retire_at(pc);
                self.psw = psw;
                Exit::Retired
            }
            I::Tlbi { rs1, rs2 } => {
                let vaddr = self.reg(rs1);
                let pte_word = self.reg(rs2);
                self.tlb.insert_pte(vaddr, pte_word);
                self.retire_next();
                Exit::Retired
            }
            I::Tlbp { rs } => {
                if rs.index() == 0 {
                    self.tlb.purge_all();
                } else {
                    let vaddr = self.reg(rs);
                    self.tlb.purge(vaddr);
                }
                self.retire_next();
                Exit::Retired
            }
            I::Gate { imm } => {
                // Retires, then traps: the handler returns to the next
                // instruction.
                self.retire_next();
                Exit::Trap(Trap::Gate { imm })
            }
            I::Brk { imm } => {
                self.retire_next();
                Exit::Trap(Trap::Break { imm })
            }
            I::Probe { rd, rs } => {
                let vaddr = self.reg(rs);
                if !self.psw.translation {
                    self.set_reg(rd, 1);
                    self.retire_next();
                    return Exit::Retired;
                }
                match self.tlb.lookup(vaddr, TlbAccess::Read, self.psw.is_user()) {
                    TlbResult::Hit(_) => {
                        self.set_reg(rd, 1);
                        self.retire_next();
                        Exit::Retired
                    }
                    TlbResult::Denied => {
                        self.set_reg(rd, 0);
                        self.retire_next();
                        Exit::Retired
                    }
                    TlbResult::Miss => Exit::Trap(Trap::TlbMiss {
                        vaddr,
                        write: false,
                    }),
                }
            }
            I::Ssm { imm } => {
                if imm & 1 != 0 {
                    self.psw.interrupts = true;
                }
                if imm & 2 != 0 {
                    self.psw.translation = true;
                }
                self.retire_next();
                Exit::Retired
            }
            I::Rsm { imm } => {
                if imm & 1 != 0 {
                    self.psw.interrupts = false;
                }
                if imm & 2 != 0 {
                    self.psw.translation = false;
                }
                self.retire_next();
                Exit::Retired
            }
            I::Halt => Exit::Halt,
            I::Idle => Exit::Idle,
            I::Diag { rs, imm } => Exit::Diag {
                value: self.reg(rs),
                code: imm,
            },
            I::Nop => {
                self.retire_next();
                Exit::Retired
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::pte;
    use hvft_isa::asm::assemble;

    fn setup(src: &str) -> (Cpu, Memory) {
        let prog = assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
        let mut mem = Memory::new(64 * 1024);
        let mut cpu = Cpu::new(16, TlbReplacement::RoundRobin, 0);
        prog.load_into_cpu(&mut cpu, &mut mem);
        (cpu, mem)
    }

    fn run_until_halt(cpu: &mut Cpu, mem: &mut Memory, max: u64) {
        for _ in 0..max {
            match cpu.step(mem) {
                Exit::Retired => {}
                Exit::Halt => return,
                other => panic!("unexpected exit {other:?} at pc={:#x}", cpu.pc),
            }
        }
        panic!("did not halt in {max} steps");
    }

    #[test]
    fn arithmetic_and_halt() {
        let (mut cpu, mut mem) = setup(
            "start:
                addi r4, r0, 10
                addi r5, r0, 32
                add  r6, r4, r5
                halt",
        );
        run_until_halt(&mut cpu, &mut mem, 10);
        assert_eq!(cpu.reg(Reg::of(6)), 42);
        assert_eq!(cpu.retired(), 3);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (mut cpu, mut mem) = setup("s: addi r0, r0, 99\n add r4, r0, r0\n halt");
        run_until_halt(&mut cpu, &mut mem, 10);
        assert_eq!(cpu.reg(Reg::ZERO), 0);
        assert_eq!(cpu.reg(Reg::of(4)), 0);
    }

    #[test]
    fn memory_round_trip_and_loop() {
        let (mut cpu, mut mem) = setup(
            "start:
                li   r4, 0x2000      ; buffer
                addi r5, r0, 5       ; counter
                addi r6, r0, 0       ; sum
            loop:
                sw   r5, 0(r4)
                lw   r7, 0(r4)
                add  r6, r6, r7
                addi r5, r5, -1
                bne  r5, r0, loop
                halt",
        );
        run_until_halt(&mut cpu, &mut mem, 100);
        assert_eq!(cpu.reg(Reg::of(6)), 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn byte_loads_sign_extend() {
        let (mut cpu, mut mem) = setup(
            "start:
                li   r4, 0x2000
                addi r5, r0, -1
                sb   r5, 0(r4)
                lb   r6, 0(r4)
                lbu  r7, 0(r4)
                halt",
        );
        run_until_halt(&mut cpu, &mut mem, 10);
        assert_eq!(cpu.reg(Reg::of(6)), 0xFFFF_FFFF);
        assert_eq!(cpu.reg(Reg::of(7)), 0xFF);
    }

    #[test]
    fn divide_by_zero_traps() {
        let (mut cpu, mut mem) = setup("s: addi r4, r0, 1\n divu r5, r4, r0\n halt");
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Trap(Trap::ArithmeticError));
        // Faulting instruction did not retire.
        assert_eq!(cpu.retired(), 1);
    }

    #[test]
    fn jal_leaks_privilege_level_in_link() {
        let (mut cpu, mut mem) = setup("s: jal ra, target\ntarget: halt");
        cpu.psw.cpl = 3; // pretend user mode; jal is not privileged
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        // Link = (pc+4) | cpl = 4 | 3.
        assert_eq!(cpu.reg(Reg::RA), 4 | 3);
    }

    #[test]
    fn jalr_masks_privilege_bits() {
        let (mut cpu, mut mem) = setup(
            "s:
                jal  ra, sub      ; ra = 4 | cpl
                halt
            sub:
                jalr r0, ra, 0    ; must return to 4 even with dirty bits",
        );
        cpu.psw.cpl = 3;
        assert_eq!(cpu.step(&mut mem), Exit::Retired); // jal
        assert_eq!(cpu.step(&mut mem), Exit::Retired); // jalr back
        assert_eq!(cpu.pc, 4);
    }

    #[test]
    fn privileged_instruction_traps_above_level_0() {
        let (mut cpu, mut mem) = setup("s: halt");
        cpu.psw.cpl = 1;
        match cpu.step(&mut mem) {
            Exit::Trap(Trap::PrivilegedOp { .. }) => {}
            other => panic!("expected PrivilegedOp, got {other:?}"),
        }
        // At level 0 it becomes a Halt exit.
        cpu.psw.cpl = 0;
        assert_eq!(cpu.step(&mut mem), Exit::Halt);
    }

    #[test]
    fn gate_retires_then_traps() {
        let (mut cpu, mut mem) = setup("s: gate 7\n halt");
        cpu.psw.cpl = 3;
        assert_eq!(cpu.step(&mut mem), Exit::Trap(Trap::Gate { imm: 7 }));
        assert_eq!(cpu.retired(), 1);
        assert_eq!(cpu.pc, 4, "gate handler must return past the gate");
    }

    #[test]
    fn trap_delivery_and_rfi() {
        let (mut cpu, mut mem) = setup(
            ".org 0
            boot:
                li   r4, 0x1000
                mtctl iva, r4
                gate 3            ; to handler at iva + 32*7
                addi r5, r0, 77   ; resumed here
                halt
            .org 0x1000 + 224
            gate_handler:
                mfctl r6, traparg
                rfi",
        );
        // boot (li=2 insns, mtctl) then gate.
        for _ in 0..3 {
            assert_eq!(cpu.step(&mut mem), Exit::Retired);
        }
        match cpu.step(&mut mem) {
            Exit::Trap(t @ Trap::Gate { imm: 3 }) => cpu.deliver_trap(t),
            other => panic!("{other:?}"),
        }
        assert_eq!(cpu.pc, 0x1000 + 32 * 7);
        assert_eq!(cpu.psw.cpl, 0);
        // Handler: mfctl, rfi.
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.reg(Reg::of(6)), 3);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        // Resumed after the gate.
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.reg(Reg::of(5)), 77);
        assert_eq!(cpu.step(&mut mem), Exit::Halt);
    }

    #[test]
    fn recovery_counter_delimits_epochs() {
        let (mut cpu, mut mem) = setup("s: nop\n nop\n nop\n nop\n nop\n nop\n nop\n nop\n halt");
        cpu.psw.recovery = true;
        cpu.set_ctl(ControlReg::Rctr, 3);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        // Exactly 3 instructions retired; the 4th step reports the epoch end.
        assert_eq!(cpu.step(&mut mem), Exit::Trap(Trap::RecoveryCounter));
        assert_eq!(cpu.retired(), 3);
        // Re-arming continues execution.
        cpu.set_ctl(ControlReg::Rctr, 2);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Trap(Trap::RecoveryCounter));
        assert_eq!(cpu.retired(), 5);
    }

    #[test]
    fn external_interrupt_checked_before_instruction() {
        let (mut cpu, mut mem) = setup("s: nop\n halt");
        cpu.psw.interrupts = true;
        cpu.set_ctl(ControlReg::Eiem, 0b1);
        cpu.raise_irq(0b1);
        assert_eq!(cpu.step(&mut mem), Exit::Trap(Trap::ExternalInterrupt));
        // Masked interrupts do not fire.
        cpu.set_ctl(ControlReg::Eiem, 0);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
    }

    #[test]
    fn eirr_write_one_to_clear() {
        let (mut cpu, mut mem) = setup("s: addi r4, r0, 1\n mtctl eirr, r4\n halt");
        cpu.raise_irq(0b11);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.ctl(ControlReg::Eirr), 0b10, "bit 0 cleared, bit 1 kept");
    }

    #[test]
    fn env_instructions_exit_at_level_0() {
        let (mut cpu, mut mem) = setup("s: mftod r4\n halt");
        match cpu.step(&mut mem) {
            Exit::Env(EnvOp::ReadTod { rd }) => {
                cpu.complete_env_read(rd, 123_456);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cpu.reg(Reg::of(4)), 123_456);
        assert_eq!(cpu.retired(), 1);
        assert_eq!(cpu.step(&mut mem), Exit::Halt);
    }

    #[test]
    fn mmio_exits() {
        let (mut cpu, mut mem) = setup(
            "s:
                li r4, 0xF0000000
                lw r5, 0(r4)
                sw r5, 4(r4)
                halt",
        );
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        match cpu.step(&mut mem) {
            Exit::MmioRead {
                paddr,
                width: MemWidth::Word,
                rd,
            } => {
                assert_eq!(paddr, 0xF000_0000);
                cpu.complete_mmio_read(rd, MemWidth::Word, 0xAB);
            }
            other => panic!("{other:?}"),
        }
        match cpu.step(&mut mem) {
            Exit::MmioWrite { paddr, value, .. } => {
                assert_eq!(paddr, 0xF000_0004);
                assert_eq!(value, 0xAB);
                cpu.complete_env_effect();
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cpu.step(&mut mem), Exit::Halt);
    }

    #[test]
    fn translation_and_tlb_miss() {
        let (mut cpu, mut mem) = setup("s: nop\n halt");
        // Map virtual page 8 to physical page 0 (where the code is).
        cpu.psw.translation = true;
        cpu.pc = 8 << 12;
        match cpu.step(&mut mem) {
            Exit::Trap(Trap::TlbMiss {
                vaddr,
                write: false,
            }) => assert_eq!(vaddr, 8 << 12),
            other => panic!("{other:?}"),
        }
        cpu.tlb.insert_pte(8 << 12, pte::V | pte::R | pte::X); // pfn 0
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.pc, (8 << 12) + 4);
    }

    #[test]
    fn user_mode_protection() {
        let (mut cpu, mut mem) = setup("s: lw r4, 0(r5)\n halt");
        cpu.psw.translation = true;
        cpu.psw.cpl = 3;
        cpu.set_reg(Reg::of(5), 9 << 12);
        // Executable+user for the code page at vpn 0 → pfn 0.
        cpu.tlb.insert_pte(0, pte::V | pte::R | pte::X | pte::U);
        // Kernel-only data page.
        cpu.tlb
            .insert_pte(9 << 12, (2 << 12) | pte::V | pte::R | pte::W);
        match cpu.step(&mut mem) {
            Exit::Trap(Trap::AccessFault {
                vaddr,
                write: false,
            }) => assert_eq!(vaddr, 9 << 12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn misaligned_word_access_faults() {
        let (mut cpu, mut mem) = setup("s: li r4, 0x2001\n lw r5, 0(r4)\n halt");
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(
            cpu.step(&mut mem),
            Exit::Trap(Trap::AlignmentFault { vaddr: 0x2001 })
        );
    }

    #[test]
    fn illegal_instruction_traps() {
        let (mut cpu, mut mem) = setup("s: .word 0\n");
        match cpu.step(&mut mem) {
            Exit::Trap(Trap::IllegalInstruction { word: 0 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_reports_accessibility() {
        let (mut cpu, mut mem) = setup("s: probe r4, r5\n probe r6, r7\n halt");
        cpu.psw.translation = true;
        cpu.tlb.insert_pte(0, pte::V | pte::R | pte::X); // code page
        cpu.tlb.insert_pte(5 << 12, (1 << 12) | pte::V | pte::R);
        cpu.set_reg(Reg::of(5), 5 << 12);
        cpu.set_reg(Reg::of(7), 5 << 12);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.reg(Reg::of(4)), 1);
        // Probe from user mode on a kernel page reports inaccessible —
        // this is how probe reveals the (real) privilege level.
        cpu.psw.cpl = 3;
        cpu.tlb.insert_pte(0, pte::V | pte::R | pte::X | pte::U);
        assert_eq!(cpu.step(&mut mem), Exit::Retired);
        assert_eq!(cpu.reg(Reg::of(6)), 0);
    }

    #[test]
    fn run_consumes_exact_budget_mid_block() {
        let (mut cpu, mut mem) = setup("s: nop\n nop\n nop\n nop\n nop\n nop\n halt");
        assert_eq!(cpu.run(&mut mem, 2), Exit::Retired);
        assert_eq!(cpu.retired(), 2);
        assert_eq!(cpu.pc, 8, "budget must stop between instructions");
        // Resume mid-block: a new (overlapping) block starts at pc.
        assert_eq!(cpu.run(&mut mem, 100), Exit::Halt);
        assert_eq!(cpu.retired(), 6);
    }

    #[test]
    fn run_recovery_counter_is_exact() {
        let (mut cpu, mut mem) = setup("s: nop\n nop\n nop\n nop\n nop\n nop\n nop\n nop\n halt");
        cpu.psw.recovery = true;
        cpu.set_ctl(ControlReg::Rctr, 3);
        assert_eq!(
            cpu.run(&mut mem, 1000),
            Exit::Trap(Trap::RecoveryCounter),
            "the counter expires between instructions, never mid-block"
        );
        assert_eq!(cpu.retired(), 3);
        cpu.set_ctl(ControlReg::Rctr, 2);
        assert_eq!(cpu.run(&mut mem, 1000), Exit::Trap(Trap::RecoveryCounter));
        assert_eq!(cpu.retired(), 5);
    }

    #[test]
    fn run_reports_pending_interrupt_before_a_block() {
        let (mut cpu, mut mem) = setup("s: nop\n nop\n halt");
        cpu.psw.interrupts = true;
        cpu.set_ctl(ControlReg::Eiem, 0b1);
        cpu.raise_irq(0b1);
        assert_eq!(cpu.run(&mut mem, 1000), Exit::Trap(Trap::ExternalInterrupt));
        assert_eq!(cpu.retired(), 0);
    }

    #[test]
    fn run_patching_ahead_within_the_same_block() {
        // The store at address 4 rewrites the instruction at address 20
        // *in the same straight-line block* before it executes. The
        // block engine must abandon the predecoded tail and re-fetch,
        // exactly like the per-step path.
        let src = "start:
                lw   r4, 256(r0)     ; replacement word, poked below
                sw   r4, 20(r0)      ; patch the insn at address 20
                addi r5, r0, 1
                addi r5, r5, 1
                addi r6, r0, 7       ; address 16 (left alone)
                addi r6, r0, 7       ; address 20 <- patched to addi r6, r0, 99
                halt";
        let patched = hvft_isa::codec::encode(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::of(6),
            rs1: Reg::ZERO,
            imm: 99,
        })
        .unwrap();
        let run_with = |block_exec: bool| {
            let (mut cpu, mut mem) = setup(src);
            mem.write_u32(256, patched).unwrap();
            cpu.set_block_execution(block_exec);
            let e = cpu.run(&mut mem, 1000);
            assert_eq!(e, Exit::Halt);
            (cpu.reg(Reg::of(6)), cpu.retired())
        };
        let (blocked, retired_b) = run_with(true);
        let (stepped, retired_s) = run_with(false);
        assert_eq!(blocked, 99, "patched instruction must be executed");
        assert_eq!(blocked, stepped);
        assert_eq!(retired_b, retired_s);
    }

    #[test]
    fn run_block_cache_hits_on_loops() {
        let (mut cpu, mut mem) = setup(
            "start:
                addi r5, r0, 50
            loop:
                addi r6, r6, 1
                addi r5, r5, -1
                bne  r5, r0, loop
                halt",
        );
        assert_eq!(cpu.run(&mut mem, 100_000), Exit::Halt);
        assert_eq!(cpu.reg(Reg::of(6)), 50);
        let stats = cpu.block_cache_stats();
        assert!(
            stats.hits > 40,
            "loop iterations must hit the cache: {stats:?}"
        );
    }

    #[test]
    fn jit_tier_matches_the_other_engines_on_a_hot_loop() {
        let src = "start:
                addi r5, r0, 200
            loop:
                addi r6, r6, 1
                sw   r6, 512(r0)
                lw   r7, 512(r0)
                addi r5, r5, -1
                bne  r5, r0, loop
                halt";
        let run_tier = |tier: ExecTier| {
            let (mut cpu, mut mem) = setup(src);
            cpu.set_exec_tier(tier);
            assert_eq!(cpu.run(&mut mem, 1_000_000), Exit::Halt);
            (
                cpu.reg(Reg::of(6)),
                cpu.reg(Reg::of(7)),
                cpu.retired(),
                cpu.pc,
            )
        };
        let step = run_tier(ExecTier::Step);
        let block = run_tier(ExecTier::Block);
        let jit = run_tier(ExecTier::Jit);
        assert_eq!(step, block);
        assert_eq!(step, jit);
    }

    #[test]
    fn jit_tier_promotes_and_retires_in_superblocks() {
        let (mut cpu, mut mem) = setup(
            "start:
                addi r5, r0, 500
            loop:
                addi r6, r6, 1
                addi r5, r5, -1
                bne  r5, r0, loop
                halt",
        );
        cpu.set_exec_tier(ExecTier::Jit);
        assert_eq!(cpu.run(&mut mem, 1_000_000), Exit::Halt);
        assert_eq!(cpu.reg(Reg::of(6)), 500);
        let stats = cpu.exec_stats();
        assert!(stats.superblocks_compiled >= 1, "{stats:?}");
        assert!(
            stats.jit_retired > stats.block_retired,
            "the hot loop must run compiled: {stats:?}"
        );
    }

    #[test]
    fn jit_recovery_counter_is_exact_inside_superblock_loops() {
        // The loop is hot enough to be compiled with its backward
        // branch wired in-span; the recovery counter must still expire
        // at the exact retirement count, mid-loop, every epoch.
        let (mut cpu, mut mem) = setup(
            "start:
                addi r5, r0, 1000
            loop:
                addi r6, r6, 1
                addi r5, r5, -1
                bne  r5, r0, loop
                halt",
        );
        cpu.set_exec_tier(ExecTier::Jit);
        cpu.psw.recovery = true;
        let mut retired_expect = 0u64;
        loop {
            cpu.set_ctl(ControlReg::Rctr, 7);
            match cpu.run(&mut mem, 1_000_000) {
                Exit::Trap(Trap::RecoveryCounter) => {
                    retired_expect += 7;
                    assert_eq!(cpu.retired(), retired_expect);
                    assert_eq!(cpu.ctl(ControlReg::Rctr), 0);
                }
                Exit::Halt => break,
                other => panic!("unexpected exit {other:?}"),
            }
        }
        assert_eq!(cpu.reg(Reg::of(6)), 1000);
    }

    #[test]
    fn jit_self_patching_superblock_is_abandoned_and_recompiled() {
        // Warm the loop so it compiles, then let it patch an
        // instruction *inside its own superblock* ahead of the PC.
        // Identical architectural results are required on every tier.
        let src = "start:
                lw   r4, 768(r0)     ; replacement word, poked below
                addi r5, r0, 100
            loop:
                addi r6, r6, 1       ; address 8 <- patched mid-run
                addi r5, r5, -1
                sw   r4, 8(r0)       ; patch the loop body behind us
                bne  r5, r0, loop
                halt";
        let patched = hvft_isa::codec::encode(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::of(6),
            rs1: Reg::of(6),
            imm: 10,
        })
        .unwrap();
        let run_tier = |tier: ExecTier| {
            let (mut cpu, mut mem) = setup(src);
            mem.write_u32(768, patched).unwrap();
            cpu.set_exec_tier(tier);
            assert_eq!(cpu.run(&mut mem, 1_000_000), Exit::Halt);
            (cpu.reg(Reg::of(6)), cpu.retired())
        };
        let step = run_tier(ExecTier::Step);
        let block = run_tier(ExecTier::Block);
        let jit = run_tier(ExecTier::Jit);
        assert_eq!(step, block);
        assert_eq!(step, jit);
        // The patch landed: 1 iteration of +1, 99 of +10.
        assert_eq!(step.0, 1 + 99 * 10);
    }

    #[test]
    fn idle_and_diag_exits() {
        let (mut cpu, mut mem) = setup("s: diag r4, 9\n idle\n halt");
        cpu.set_reg(Reg::of(4), 0xBEEF);
        assert_eq!(
            cpu.step(&mut mem),
            Exit::Diag {
                value: 0xBEEF,
                code: 9
            }
        );
        cpu.complete_env_effect();
        assert_eq!(cpu.step(&mut mem), Exit::Idle);
        cpu.complete_env_effect();
        assert_eq!(cpu.step(&mut mem), Exit::Halt);
    }
}
