//! Traps (interruptions) and external-interrupt sources.

use core::fmt;

/// External-interrupt source bits in the `eirr`/`eiem` control registers.
pub mod irq {
    /// Interval timer expiry.
    pub const TIMER: u32 = 1 << 0;
    /// Disk controller completion (or uncertain) interrupt.
    pub const DISK: u32 = 1 << 1;
    /// Console transmit-complete interrupt.
    pub const CONSOLE: u32 = 1 << 2;
}

/// A synchronous trap or external interruption.
///
/// The vector index selects the handler at `iva + 32 * index`
/// (see [`Trap::vector`]); handlers are entered at privilege 0 with
/// translation and interrupts off, the old PSW in `ipsw` and the old PC in
/// `iip`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trap {
    /// Undecodable instruction word.
    IllegalInstruction {
        /// The raw word.
        word: u32,
    },
    /// Privileged instruction attempted above privilege level 0.
    ///
    /// Under the hypervisor this is the workhorse trap: the guest kernel
    /// runs at (real) level 1, so all of its privileged instructions arrive
    /// here and are simulated.
    PrivilegedOp {
        /// The raw instruction word.
        word: u32,
    },
    /// No TLB entry translates the access.
    TlbMiss {
        /// Faulting virtual address.
        vaddr: u32,
        /// Whether the access was a write.
        write: bool,
    },
    /// A TLB entry exists but forbids the access (protection violation).
    AccessFault {
        /// Faulting virtual address.
        vaddr: u32,
        /// Whether the access was a write.
        write: bool,
    },
    /// Misaligned word access.
    AlignmentFault {
        /// Faulting virtual address.
        vaddr: u32,
    },
    /// Division by zero.
    ArithmeticError,
    /// `gate` instruction: controlled entry into the kernel (syscall).
    Gate {
        /// Service number from the instruction.
        imm: u32,
    },
    /// `brk` instruction.
    Break {
        /// Debugger tag from the instruction.
        imm: u32,
    },
    /// Recovery counter expired — this delimits an epoch (paper §2.1).
    RecoveryCounter,
    /// An enabled external interrupt is pending (see [`irq`]).
    ExternalInterrupt,
}

impl Trap {
    /// Handler index; the handler entry point is `iva + 32 * vector`.
    pub const fn vector(self) -> u32 {
        match self {
            Trap::IllegalInstruction { .. } => 1,
            Trap::PrivilegedOp { .. } => 2,
            Trap::TlbMiss { .. } => 3,
            Trap::AccessFault { .. } => 4,
            Trap::AlignmentFault { .. } => 5,
            Trap::ArithmeticError => 6,
            Trap::Gate { .. } => 7,
            Trap::Break { .. } => 8,
            Trap::RecoveryCounter => 9,
            Trap::ExternalInterrupt => 10,
        }
    }

    /// Value deposited in the `traparg` control register on delivery.
    pub const fn trap_arg(self) -> u32 {
        match self {
            Trap::IllegalInstruction { word } | Trap::PrivilegedOp { word } => word,
            Trap::TlbMiss { vaddr, .. }
            | Trap::AccessFault { vaddr, .. }
            | Trap::AlignmentFault { vaddr } => vaddr,
            Trap::Gate { imm } | Trap::Break { imm } => imm,
            Trap::ArithmeticError | Trap::RecoveryCounter | Trap::ExternalInterrupt => 0,
        }
    }

    /// Whether the trapping instruction did **not** retire and delivery
    /// must record the *faulting* instruction's address (restart
    /// semantics), as opposed to `gate`, which retires and records the
    /// following instruction.
    pub const fn restarts(self) -> bool {
        !matches!(self, Trap::Gate { .. } | Trap::Break { .. })
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::IllegalInstruction { word } => write!(f, "illegal instruction {word:#010x}"),
            Trap::PrivilegedOp { word } => write!(f, "privileged operation {word:#010x}"),
            Trap::TlbMiss { vaddr, write } => {
                write!(
                    f,
                    "TLB miss at {vaddr:#010x} ({})",
                    if write { "write" } else { "read" }
                )
            }
            Trap::AccessFault { vaddr, write } => {
                write!(
                    f,
                    "access fault at {vaddr:#010x} ({})",
                    if write { "write" } else { "read" }
                )
            }
            Trap::AlignmentFault { vaddr } => write!(f, "alignment fault at {vaddr:#010x}"),
            Trap::ArithmeticError => write!(f, "arithmetic error"),
            Trap::Gate { imm } => write!(f, "gate {imm}"),
            Trap::Break { imm } => write!(f, "break {imm}"),
            Trap::RecoveryCounter => write!(f, "recovery counter"),
            Trap::ExternalInterrupt => write!(f, "external interrupt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_distinct() {
        let traps = [
            Trap::IllegalInstruction { word: 0 },
            Trap::PrivilegedOp { word: 0 },
            Trap::TlbMiss {
                vaddr: 0,
                write: false,
            },
            Trap::AccessFault {
                vaddr: 0,
                write: false,
            },
            Trap::AlignmentFault { vaddr: 0 },
            Trap::ArithmeticError,
            Trap::Gate { imm: 0 },
            Trap::Break { imm: 0 },
            Trap::RecoveryCounter,
            Trap::ExternalInterrupt,
        ];
        let mut seen = std::collections::HashSet::new();
        for t in traps {
            assert!(seen.insert(t.vector()), "duplicate vector for {t}");
        }
    }

    #[test]
    fn trap_args() {
        assert_eq!(
            Trap::TlbMiss {
                vaddr: 0x1234,
                write: true
            }
            .trap_arg(),
            0x1234
        );
        assert_eq!(Trap::Gate { imm: 9 }.trap_arg(), 9);
        assert_eq!(Trap::PrivilegedOp { word: 0xAB }.trap_arg(), 0xAB);
        assert_eq!(Trap::RecoveryCounter.trap_arg(), 0);
    }

    #[test]
    fn restart_semantics() {
        assert!(Trap::TlbMiss {
            vaddr: 0,
            write: false
        }
        .restarts());
        assert!(Trap::PrivilegedOp { word: 0 }.restarts());
        assert!(!Trap::Gate { imm: 0 }.restarts());
        assert!(!Trap::Break { imm: 0 }.restarts());
        assert!(Trap::RecoveryCounter.restarts());
    }
}
