//! Fast deterministic hashing for the interpreter's hot lookup tables.

use std::hash::{BuildHasherDefault, Hasher};

/// A fast, deterministic hasher for the small integer keys the hot
/// paths index by (physical addresses, virtual page numbers). The
/// standard library's default SipHash is DoS-resistant but costs more
/// than the lookups it serves here; simulator determinism only needs a
/// fixed multiplicative mix.
#[derive(Default)]
pub struct IntHasher(u64);

impl Hasher for IntHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        // The multiplicative mix concentrates entropy in the high bits;
        // HashMap masks with the low ones.
        self.0 ^ (self.0 >> 32)
    }
}

/// `BuildHasher` plugging [`IntHasher`] into a `HashMap`.
pub type IntBuildHasher = BuildHasherDefault<IntHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let hash = |v: u32| {
            let mut h = IntHasher::default();
            h.write_u32(v);
            h.finish()
        };
        assert_eq!(hash(0x1234), hash(0x1234));
        assert_ne!(hash(0x1234), hash(0x1238));
        // Word-aligned addresses must not collapse onto the low bits a
        // HashMap masks with.
        let a = hash(0x1000) & 0x7F;
        let b = hash(0x2000) & 0x7F;
        let c = hash(0x3000) & 0x7F;
        assert!(a != b || b != c, "aligned keys collapsed: {a} {b} {c}");
    }
}
