//! The software-managed translation lookaside buffer.
//!
//! On our machine — as on the paper's HP 9000/720 — TLB misses are handled
//! by software, and the hardware replacement policy is
//! **non-deterministic**. The paper's authors (and several HP engineers)
//! were surprised to find this breaks the Ordinary Instruction Assumption:
//! identical reference streams at primary and backup can produce different
//! TLB contents, making miss traps visible at different points in the two
//! instruction streams. Their fix — the hypervisor takes over TLB
//! management — is implemented in `hvft-hypervisor`; this module provides
//! the raw device, with the replacement policy made explicit so both the
//! problem and the fix can be demonstrated.

use crate::mem::{PAGE_SHIFT, PAGE_SIZE};
use hvft_sim::rng::SimRng;

/// PTE/TLB permission and status bits (low 12 bits of a PTE word).
pub mod pte {
    /// Entry is valid.
    pub const V: u32 = 1 << 0;
    /// Readable.
    pub const R: u32 = 1 << 1;
    /// Writable.
    pub const W: u32 = 1 << 2;
    /// Executable.
    pub const X: u32 = 1 << 3;
    /// Accessible from user privilege (level 3).
    pub const U: u32 = 1 << 4;
}

/// One TLB entry: a virtual page mapped to a physical frame with
/// permissions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: u32,
    /// Physical frame number.
    pub pfn: u32,
    /// Permission bits (see [`pte`]).
    pub flags: u32,
}

impl TlbEntry {
    /// Builds an entry from a virtual address and a raw PTE word
    /// (`pfn << 12 | flags`), the operand format of the `tlbi`
    /// instruction.
    pub fn from_pte(vaddr: u32, pte_word: u32) -> TlbEntry {
        TlbEntry {
            vpn: vaddr >> PAGE_SHIFT,
            pfn: pte_word >> PAGE_SHIFT,
            flags: pte_word & 0xFFF,
        }
    }

    /// Translates an address within this entry's page.
    pub fn translate(&self, vaddr: u32) -> u32 {
        (self.pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))
    }
}

/// Replacement policy used when inserting into a full TLB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbReplacement {
    /// Deterministic rotation through the entries.
    RoundRobin,
    /// Victim chosen pseudo-randomly — models the HP 9000/720 behaviour
    /// that broke replica determinism (paper §3.2).
    Random,
}

/// Result of a TLB permission check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbAccess {
    /// Instruction fetch.
    Execute,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// Outcome of a lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbResult {
    /// Translation found and permitted; the physical address.
    Hit(u32),
    /// No entry for the page.
    Miss,
    /// Entry exists but the access is not permitted.
    Denied,
}

/// Shared permission predicate of [`Tlb::lookup`] and
/// [`Tlb::peek_lookup`] — one definition so the counted and the
/// side-effect-free paths cannot drift.
#[inline]
fn permits(flags: u32, access: TlbAccess, user: bool) -> bool {
    flags & pte::V != 0
        && (!user || flags & pte::U != 0)
        && match access {
            TlbAccess::Execute => flags & pte::X != 0,
            TlbAccess::Read => flags & pte::R != 0,
            TlbAccess::Write => flags & pte::W != 0,
        }
}

/// Size of the direct-mapped front cache (power of two).
const FRONT_SLOTS: usize = 16;
/// Front-cache tag marking an empty slot (no valid vpn reaches it:
/// vpns are at most 20 bits).
const FRONT_EMPTY: u32 = u32::MAX;

/// A fully associative, software-filled TLB.
///
/// # Examples
///
/// ```
/// use hvft_machine::tlb::{pte, Tlb, TlbAccess, TlbReplacement, TlbResult};
///
/// let mut tlb = Tlb::new(16, TlbReplacement::RoundRobin, 0);
/// tlb.insert_pte(0x0000_3000, (5 << 12) | pte::V | pte::R);
/// assert_eq!(
///     tlb.lookup(0x0000_3010, TlbAccess::Read, false),
///     TlbResult::Hit((5 << 12) | 0x10)
/// );
/// ```
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    /// vpn → slot index for O(1) lookup.
    index: std::collections::HashMap<u32, usize, crate::hash::IntBuildHasher>,
    /// Direct-mapped front cache (vpn tag → slot), indexed by the low
    /// vpn bits, for the common case of accesses revisiting a handful
    /// of pages; cleared on any insert or purge. Purely an access-path
    /// shortcut — hit/miss accounting and permission checks are
    /// identical with or without it.
    front: [(u32, u32); FRONT_SLOTS],
    policy: TlbReplacement,
    rr_next: usize,
    rng: SimRng,
    hits: u64,
    misses: u64,
    /// Monotonic generation of the TLB *contents*: bumped by every
    /// insert, purge and restore. Derived-cache validation (the jit's
    /// inline return cache) compares generations instead of re-walking
    /// entries; not part of canonical state.
    content_gen: u64,
}

impl Tlb {
    /// Creates an empty TLB with `slots` entries, the given replacement
    /// policy, and an RNG seed (only used by [`TlbReplacement::Random`]).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize, policy: TlbReplacement, seed: u64) -> Self {
        assert!(slots > 0, "TLB needs at least one slot");
        Tlb {
            entries: vec![None; slots],
            index: std::collections::HashMap::default(),
            front: [(FRONT_EMPTY, 0); FRONT_SLOTS],
            policy,
            rr_next: 0,
            rng: SimRng::seed_from_label(seed, "tlb"),
            hits: 0,
            misses: 0,
            content_gen: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.index.len()
    }

    /// Looks up `vaddr` for the given access at the given privilege.
    #[inline]
    pub fn lookup(&mut self, vaddr: u32, access: TlbAccess, user: bool) -> TlbResult {
        let vpn = vaddr >> PAGE_SHIFT;
        let fidx = (vpn as usize) & (FRONT_SLOTS - 1);
        let slot = if self.front[fidx].0 == vpn {
            self.front[fidx].1 as usize
        } else {
            let Some(&slot) = self.index.get(&vpn) else {
                self.misses += 1;
                return TlbResult::Miss;
            };
            self.front[fidx] = (vpn, slot as u32);
            slot
        };
        let entry = self.entries[slot].expect("indexed slot must be valid");
        if permits(entry.flags, access, user) {
            self.hits += 1;
            TlbResult::Hit(entry.translate(vaddr))
        } else {
            TlbResult::Denied
        }
    }

    /// Side-effect-free lookup: same outcome as [`Tlb::lookup`] but
    /// touching neither the front cache nor the hit/miss counters.
    /// Derived-cache validation (the jit re-checking a cross-page
    /// trace's secondary translations) uses this so that validation
    /// frequency — which depends on cache warmth — can never perturb
    /// the snapshotted accounting state.
    #[inline]
    pub fn peek_lookup(&self, vaddr: u32, access: TlbAccess, user: bool) -> TlbResult {
        let vpn = vaddr >> PAGE_SHIFT;
        let Some(&slot) = self.index.get(&vpn) else {
            return TlbResult::Miss;
        };
        let entry = self.entries[slot].expect("indexed slot must be valid");
        if permits(entry.flags, access, user) {
            TlbResult::Hit(entry.translate(vaddr))
        } else {
            TlbResult::Denied
        }
    }

    /// Current content generation (see the field doc).
    #[inline]
    pub fn content_gen(&self) -> u64 {
        self.content_gen
    }

    /// Inserts a mapping, evicting per the replacement policy if full.
    /// An existing entry for the same page is overwritten in place.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.front = [(FRONT_EMPTY, 0); FRONT_SLOTS];
        self.content_gen += 1;
        if let Some(&slot) = self.index.get(&entry.vpn) {
            self.entries[slot] = Some(entry);
            return;
        }
        let slot = match self.entries.iter().position(Option::is_none) {
            Some(free) => free,
            None => {
                let victim = match self.policy {
                    TlbReplacement::RoundRobin => {
                        let v = self.rr_next;
                        self.rr_next = (self.rr_next + 1) % self.entries.len();
                        v
                    }
                    TlbReplacement::Random => {
                        self.rng.gen_range(self.entries.len() as u64) as usize
                    }
                };
                if let Some(old) = self.entries[victim] {
                    self.index.remove(&old.vpn);
                }
                victim
            }
        };
        self.index.insert(entry.vpn, slot);
        self.entries[slot] = Some(entry);
    }

    /// Inserts from `tlbi` operands: a virtual address and a PTE word.
    pub fn insert_pte(&mut self, vaddr: u32, pte_word: u32) {
        self.insert(TlbEntry::from_pte(vaddr, pte_word));
    }

    /// Purges the entry covering `vaddr`, if any.
    pub fn purge(&mut self, vaddr: u32) {
        self.front = [(FRONT_EMPTY, 0); FRONT_SLOTS];
        self.content_gen += 1;
        let vpn = vaddr >> PAGE_SHIFT;
        if let Some(slot) = self.index.remove(&vpn) {
            self.entries[slot] = None;
        }
    }

    /// Purges every entry.
    pub fn purge_all(&mut self) {
        self.front = [(FRONT_EMPTY, 0); FRONT_SLOTS];
        self.content_gen += 1;
        self.index.clear();
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// A canonical (sorted) snapshot of the valid entries, for divergence
    /// analysis in tests.
    pub fn snapshot(&self) -> Vec<TlbEntry> {
        let mut v: Vec<TlbEntry> = self.entries.iter().flatten().copied().collect();
        v.sort_by_key(|e| e.vpn);
        v
    }

    /// Captures slot-exact state for whole-machine snapshots: entries in
    /// their physical slots, the replacement cursor, the replacement RNG
    /// and the hit/miss counters. (Unlike [`Tlb::snapshot`], which sorts
    /// and drops slot positions, this preserves everything future
    /// replacement decisions depend on.)
    pub fn snapshot_state(&self) -> crate::snapshot::TlbSnapshot {
        crate::snapshot::TlbSnapshot {
            entries: self.entries.clone(),
            policy: self.policy,
            rr_next: self.rr_next,
            rng: self.rng.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores slot-exact state captured by [`Tlb::snapshot_state`].
    /// The lookup index is rebuilt from the entries and the front cache
    /// cleared — both are derived, so subsequent lookups, fills and
    /// evictions behave bit-identically to the captured TLB.
    pub fn restore_state(&mut self, snap: &crate::snapshot::TlbSnapshot) {
        self.entries = snap.entries.clone();
        self.index.clear();
        for (slot, entry) in self.entries.iter().enumerate() {
            if let Some(e) = entry {
                self.index.insert(e.vpn, slot);
            }
        }
        self.front = [(FRONT_EMPTY, 0); FRONT_SLOTS];
        // Derived, not snapshotted: any bump conservatively invalidates
        // stale translation predictions (and restores rebuild the jit
        // caches cold anyway).
        self.content_gen += 1;
        self.policy = snap.policy;
        self.rr_next = snap.rr_next;
        self.rng = snap.rng.clone();
        self.hits = snap.hits;
        self.misses = snap.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u32) -> TlbEntry {
        TlbEntry {
            vpn,
            pfn: vpn + 100,
            flags: pte::V | pte::R | pte::W | pte::X | pte::U,
        }
    }

    #[test]
    fn hit_translates_offset() {
        let mut t = Tlb::new(4, TlbReplacement::RoundRobin, 0);
        t.insert(entry(3));
        match t.lookup(3 << PAGE_SHIFT | 0x123, TlbAccess::Read, false) {
            TlbResult::Hit(p) => assert_eq!(p, (103 << PAGE_SHIFT) | 0x123),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn miss_on_absent_page() {
        let mut t = Tlb::new(4, TlbReplacement::RoundRobin, 0);
        assert_eq!(t.lookup(0x5000, TlbAccess::Read, false), TlbResult::Miss);
        assert_eq!(t.stats(), (0, 1));
    }

    #[test]
    fn permission_checks() {
        let mut t = Tlb::new(4, TlbReplacement::RoundRobin, 0);
        t.insert(TlbEntry {
            vpn: 1,
            pfn: 1,
            flags: pte::V | pte::R,
        });
        let va = 1 << PAGE_SHIFT;
        assert!(matches!(
            t.lookup(va, TlbAccess::Read, false),
            TlbResult::Hit(_)
        ));
        assert_eq!(t.lookup(va, TlbAccess::Write, false), TlbResult::Denied);
        assert_eq!(t.lookup(va, TlbAccess::Execute, false), TlbResult::Denied);
        // Kernel-only page denied to user.
        assert_eq!(t.lookup(va, TlbAccess::Read, true), TlbResult::Denied);
    }

    #[test]
    fn user_bit_grants_user_access() {
        let mut t = Tlb::new(4, TlbReplacement::RoundRobin, 0);
        t.insert(TlbEntry {
            vpn: 2,
            pfn: 2,
            flags: pte::V | pte::R | pte::U,
        });
        assert!(matches!(
            t.lookup(2 << PAGE_SHIFT, TlbAccess::Read, true),
            TlbResult::Hit(_)
        ));
    }

    #[test]
    fn reinsert_same_page_overwrites() {
        let mut t = Tlb::new(2, TlbReplacement::RoundRobin, 0);
        t.insert(TlbEntry {
            vpn: 7,
            pfn: 1,
            flags: pte::V | pte::R,
        });
        t.insert(TlbEntry {
            vpn: 7,
            pfn: 2,
            flags: pte::V | pte::R,
        });
        assert_eq!(t.occupancy(), 1);
        match t.lookup(7 << PAGE_SHIFT, TlbAccess::Read, false) {
            TlbResult::Hit(p) => assert_eq!(p >> PAGE_SHIFT, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_robin_eviction_is_deterministic() {
        let mut a = Tlb::new(2, TlbReplacement::RoundRobin, 1);
        let mut b = Tlb::new(2, TlbReplacement::RoundRobin, 2);
        for vpn in 0..10 {
            a.insert(entry(vpn));
            b.insert(entry(vpn));
        }
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "round robin must not depend on the seed"
        );
    }

    #[test]
    fn random_eviction_depends_on_seed() {
        // This is the paper's HP 9000/720 surprise in miniature: two TLBs
        // fed the identical insert stream end up with different contents.
        let mut a = Tlb::new(8, TlbReplacement::Random, 1);
        let mut b = Tlb::new(8, TlbReplacement::Random, 2);
        for vpn in 0..256 {
            a.insert(entry(vpn));
            b.insert(entry(vpn));
        }
        assert_ne!(a.snapshot(), b.snapshot(), "different seeds should diverge");
    }

    #[test]
    fn random_eviction_same_seed_is_reproducible() {
        let mut a = Tlb::new(8, TlbReplacement::Random, 42);
        let mut b = Tlb::new(8, TlbReplacement::Random, 42);
        for vpn in 0..256 {
            a.insert(entry(vpn));
            b.insert(entry(vpn));
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn purge() {
        let mut t = Tlb::new(4, TlbReplacement::RoundRobin, 0);
        t.insert(entry(1));
        t.insert(entry(2));
        t.purge(1 << PAGE_SHIFT);
        assert_eq!(
            t.lookup(1 << PAGE_SHIFT, TlbAccess::Read, false),
            TlbResult::Miss
        );
        assert!(matches!(
            t.lookup(2 << PAGE_SHIFT, TlbAccess::Read, false),
            TlbResult::Hit(_)
        ));
        t.purge_all();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn from_pte_splits_fields() {
        let e = TlbEntry::from_pte(0x0000_5ABC, (9 << 12) | pte::V | pte::W);
        assert_eq!(e.vpn, 5);
        assert_eq!(e.pfn, 9);
        assert_eq!(e.flags, pte::V | pte::W);
    }
}
