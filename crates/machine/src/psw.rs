//! The processor status word.

use core::fmt;

/// Processor status word: privilege level plus the interruption-control
/// bits the paper's mechanisms require.
///
/// Like PA-RISC, the machine has four privilege levels; level 0 may execute
/// privileged instructions. The hypervisor runs the guest kernel at level 1
/// ("virtual level 0") and guest user code at level 3, so every privileged
/// instruction executed by the guest traps (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Psw {
    /// Current privilege level, 0 (most privileged) ..= 3.
    pub cpl: u8,
    /// External interrupts enabled.
    pub interrupts: bool,
    /// Address translation enabled (off inside interruption handlers).
    pub translation: bool,
    /// Recovery counter enabled: when set, the counter in `rctr`
    /// decrements per retired instruction and traps on expiry.
    pub recovery: bool,
}

impl Psw {
    /// The state the processor boots in and enters trap handlers with:
    /// privilege 0, interrupts off, translation off, recovery counting
    /// unchanged by delivery (set explicitly by the embedder).
    pub const fn handler_entry(recovery: bool) -> Psw {
        Psw {
            cpl: 0,
            interrupts: false,
            translation: false,
            recovery,
        }
    }

    /// Boot-time PSW.
    pub const fn reset() -> Psw {
        Psw {
            cpl: 0,
            interrupts: false,
            translation: false,
            recovery: false,
        }
    }

    /// Packs into a word for storage in `ipsw`.
    pub const fn pack(self) -> u32 {
        (self.cpl as u32)
            | ((self.interrupts as u32) << 2)
            | ((self.translation as u32) << 3)
            | ((self.recovery as u32) << 4)
    }

    /// Unpacks from an `ipsw` word; unused bits are ignored.
    pub const fn unpack(word: u32) -> Psw {
        Psw {
            cpl: (word & 0x3) as u8,
            interrupts: word & (1 << 2) != 0,
            translation: word & (1 << 3) != 0,
            recovery: word & (1 << 4) != 0,
        }
    }

    /// Whether the processor is at user privilege (level 3).
    pub const fn is_user(self) -> bool {
        self.cpl == 3
    }
}

impl fmt::Display for Psw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpl={} i={} t={} r={}",
            self.cpl, self.interrupts as u8, self.translation as u8, self.recovery as u8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for cpl in 0..4 {
            for bits in 0..8 {
                let psw = Psw {
                    cpl,
                    interrupts: bits & 1 != 0,
                    translation: bits & 2 != 0,
                    recovery: bits & 4 != 0,
                };
                assert_eq!(Psw::unpack(psw.pack()), psw);
            }
        }
    }

    #[test]
    fn unpack_ignores_garbage_bits() {
        let psw = Psw::unpack(0xFFFF_FF00 | 0b10111);
        assert_eq!(psw.cpl, 3);
        assert!(psw.interrupts);
        assert!(!psw.translation);
        assert!(psw.recovery);
    }

    #[test]
    fn reset_state() {
        let psw = Psw::reset();
        assert_eq!(psw.cpl, 0);
        assert!(!psw.interrupts);
        assert!(!psw.translation);
        assert!(!psw.is_user());
    }

    #[test]
    fn user_check() {
        assert!(Psw {
            cpl: 3,
            ..Psw::reset()
        }
        .is_user());
        assert!(!Psw {
            cpl: 1,
            ..Psw::reset()
        }
        .is_user());
    }
}
