//! `hvft-machine` — the virtual hardware of the hvft system.
//!
//! This crate implements a deterministic 32-bit RISC processor with the
//! PA-RISC features the paper depends on:
//!
//! - four privilege levels with the leaky `jal`/`probe`/`gate` semantics
//!   that make naive virtualization detectable (paper §3.1);
//! - a software-managed [`tlb::Tlb`] whose replacement policy can be made
//!   **non-deterministic**, reproducing the HP 9000/720 behaviour that
//!   violated the Ordinary Instruction Assumption (paper §3.2);
//! - a **recovery counter** that traps after a programmed number of
//!   retired instructions, the mechanism behind the Instruction-Stream
//!   Interrupt Assumption (paper §2.1);
//! - memory-mapped I/O windows that force device access through the
//!   embedder ([`cpu::Exit::MmioRead`]/[`cpu::Exit::MmioWrite`]);
//! - environment instructions (clock, timer) reported as [`cpu::Exit::Env`]
//!   so the hypervisor can simulate them identically on both replicas.
//!
//! The CPU is policy-free: bare-metal behaviour and hypervised behaviour
//! are both implemented in `hvft-hypervisor` on top of [`cpu::Cpu::step`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cpu;
pub mod exec;
pub mod hash;
pub mod jit;
pub mod mem;
pub mod psw;
pub mod snapshot;
pub mod statehash;
pub mod tlb;
pub mod trap;

pub use block::{BlockCache, BlockCacheStats, DecodedBlock};
pub use cpu::{Cpu, EnvOp, Exit, LoadProgram};
pub use exec::{ExecStats, ExecTier};
pub use mem::{MemFault, Memory, IO_BASE, IO_SIZE, PAGE_SHIFT, PAGE_SIZE};
pub use psw::Psw;
pub use snapshot::{CpuSnapshot, MemSnapshot, TlbSnapshot};
pub use statehash::{register_state_hash, vm_state_hash, Fnv64};
pub use tlb::{pte, Tlb, TlbAccess, TlbEntry, TlbReplacement, TlbResult};
pub use trap::{irq, Trap};
