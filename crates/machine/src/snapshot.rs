//! Whole-machine snapshot types.
//!
//! A snapshot captures exactly the **canonical** machine state — the
//! state a real processor would have to preserve across a power cycle
//! for execution to continue bit-identically:
//!
//! - every general-purpose and control register, the PC, the PSW and
//!   the retirement counter ([`CpuSnapshot`]);
//! - RAM contents *and* the per-page write generations that drive
//!   self-modifying-code detection ([`MemSnapshot`]);
//! - the TLB slot-by-slot, including the replacement cursor and the
//!   replacement RNG state, plus the hit/miss counters
//!   ([`TlbSnapshot`]).
//!
//! **Derived** state is deliberately absent: the decoded-block arena,
//! the JIT superblock cache and the TLB front cache are all rebuilt
//! from scratch after a restore. They are pure accelerations of the
//! canonical state, so dropping them changes *when* recompilation
//! happens but never *what* the machine computes — the snapshot
//! proptests (`tests/proptest_snapshot.rs`) pin this down across all
//! three execution tiers. Per-tier retirement attribution in
//! [`ExecStats`] is carried through so reports stay continuous, even
//! though the caches behind it are not.
//!
//! Snapshot fields are crate-private: a snapshot can only be produced
//! by [`Cpu::snapshot`], [`Memory::snapshot`] and
//! [`Tlb::snapshot_state`], which keeps impossible states (an indexed
//! slot that is empty, a retirement count behind the epoch start)
//! unrepresentable from outside.
//!
//! [`Cpu::snapshot`]: crate::cpu::Cpu::snapshot
//! [`Memory::snapshot`]: crate::mem::Memory::snapshot
//! [`Tlb::snapshot_state`]: crate::tlb::Tlb::snapshot_state

use crate::exec::{ExecStats, ExecTier};
use crate::psw::Psw;
use crate::tlb::{TlbEntry, TlbReplacement};
use hvft_sim::rng::SimRng;

/// Slot-exact TLB state (entries in their physical slots, replacement
/// cursor, replacement RNG, hit/miss counters). The lookup index and
/// the front cache are derived and rebuilt on restore.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TlbSnapshot {
    pub(crate) entries: Vec<Option<TlbEntry>>,
    pub(crate) policy: TlbReplacement,
    pub(crate) rr_next: usize,
    pub(crate) rng: SimRng,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl TlbSnapshot {
    /// Number of valid entries captured (for reports and tests).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Architectural CPU state: registers, PC, PSW, control registers,
/// retirement counter, the selected execution tier with its cumulative
/// counters, and the TLB. The block and superblock caches are derived
/// and start cold after a restore.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CpuSnapshot {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) psw: Psw,
    pub(crate) ctl: [u32; 10],
    pub(crate) retired: u64,
    pub(crate) tier: ExecTier,
    pub(crate) exec_stats: ExecStats,
    pub(crate) tlb: TlbSnapshot,
}

impl CpuSnapshot {
    /// Retirement count at the moment of capture.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Execution tier the CPU was using when captured.
    pub fn tier(&self) -> ExecTier {
        self.tier
    }
}

/// Physical memory: RAM bytes plus the per-page write generations,
/// preserved verbatim so SMC detection resumes exactly where it left
/// off.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemSnapshot {
    pub(crate) ram: Vec<u8>,
    pub(crate) page_gens: Vec<u64>,
}

impl MemSnapshot {
    /// RAM size captured, in bytes.
    pub fn ram_bytes(&self) -> usize {
        self.ram.len()
    }
}
