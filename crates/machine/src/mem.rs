//! Physical memory and the memory-mapped I/O window.
//!
//! Like PA-RISC, I/O controller registers live in physical address space
//! and are reached with ordinary loads and stores. Accesses that fall in
//! the I/O window are not satisfied by RAM; the CPU reports them to its
//! embedder (the bare machine routes them to devices, the hypervisor
//! intercepts them — paper §3.2, Environment Instruction Assumption).

/// Base physical address of the memory-mapped I/O window.
pub const IO_BASE: u32 = 0xF000_0000;
/// Size of the I/O window in bytes.
pub const IO_SIZE: u32 = 0x0001_0000;

/// Page size (bytes) shared by the MMU and page tables.
pub const PAGE_SIZE: u32 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Classification of a physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddrKind {
    /// Backed by RAM.
    Ram,
    /// Inside the memory-mapped I/O window.
    Io,
    /// Neither RAM nor I/O.
    Unmapped,
}

/// Byte-addressable little-endian physical memory.
///
/// # Examples
///
/// ```
/// use hvft_machine::mem::Memory;
///
/// let mut m = Memory::new(4096);
/// m.write_u32(8, 0xCAFEBABE).unwrap();
/// assert_eq!(m.read_u32(8), Ok(0xCAFEBABE));
/// ```
#[derive(Clone)]
pub struct Memory {
    ram: Vec<u8>,
    /// Per-page write generation, bumped on every RAM write (CPU store,
    /// program load, or device DMA). The block cache compares a cached
    /// block's recorded generation against the current one to detect
    /// self-modifying code without any registration protocol.
    page_gens: Vec<u64>,
}

/// A physical access that cannot be satisfied by RAM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// Address is in the I/O window; the embedder must handle it.
    Io {
        /// The physical address.
        paddr: u32,
    },
    /// Address is outside RAM and the I/O window.
    Unmapped {
        /// The physical address.
        paddr: u32,
    },
}

impl Memory {
    /// Allocates zeroed RAM of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the RAM region would overlap the I/O window.
    pub fn new(bytes: usize) -> Self {
        assert!(
            (bytes as u64) <= u64::from(IO_BASE),
            "RAM of {bytes} bytes would overlap the I/O window at {IO_BASE:#x}"
        );
        Memory {
            ram: vec![0; bytes],
            page_gens: vec![0; bytes.div_ceil(PAGE_SIZE as usize)],
        }
    }

    /// Write generation of the page containing `paddr`. Returns 0 for
    /// addresses outside RAM (no blocks are ever cached there).
    pub fn page_gen(&self, paddr: u32) -> u64 {
        self.page_gens
            .get((paddr >> PAGE_SHIFT) as usize)
            .copied()
            .unwrap_or(0)
    }

    #[inline]
    fn touch(&mut self, paddr: u32) {
        if let Some(g) = self.page_gens.get_mut((paddr >> PAGE_SHIFT) as usize) {
            *g += 1;
        }
    }

    /// Zeroes all RAM in place (keeping the allocation) and bumps every
    /// page generation so cached blocks over the old contents die.
    pub fn reset(&mut self) {
        self.ram.fill(0);
        for g in &mut self.page_gens {
            *g += 1;
        }
    }

    /// RAM size in bytes.
    pub fn size(&self) -> usize {
        self.ram.len()
    }

    /// Classifies a physical address.
    pub fn kind(&self, paddr: u32) -> AddrKind {
        if (paddr as usize) < self.ram.len() {
            AddrKind::Ram
        } else if (IO_BASE..IO_BASE.wrapping_add(IO_SIZE)).contains(&paddr) {
            AddrKind::Io
        } else {
            AddrKind::Unmapped
        }
    }

    #[inline]
    fn check(&self, paddr: u32, len: u32) -> Result<usize, MemFault> {
        let end = paddr as u64 + u64::from(len);
        if end <= self.ram.len() as u64 {
            Ok(paddr as usize)
        } else if self.kind(paddr) == AddrKind::Io {
            Err(MemFault::Io { paddr })
        } else {
            Err(MemFault::Unmapped { paddr })
        }
    }

    /// Reads a little-endian word. `paddr` must be 4-byte aligned (the CPU
    /// checks alignment before calling).
    #[inline]
    pub fn read_u32(&self, paddr: u32) -> Result<u32, MemFault> {
        let i = self.check(paddr, 4)?;
        let bytes: [u8; 4] = self.ram[i..i + 4].try_into().expect("checked length");
        Ok(u32::from_le_bytes(bytes))
    }

    /// Writes a little-endian word.
    #[inline]
    pub fn write_u32(&mut self, paddr: u32, value: u32) -> Result<(), MemFault> {
        let i = self.check(paddr, 4)?;
        self.ram[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.touch(paddr);
        // An unaligned word may straddle a page boundary (the CPU checks
        // alignment, but embedders may not).
        if paddr >> PAGE_SHIFT != (paddr + 3) >> PAGE_SHIFT {
            self.touch(paddr + 3);
        }
        Ok(())
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, paddr: u32) -> Result<u8, MemFault> {
        let i = self.check(paddr, 1)?;
        Ok(self.ram[i])
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, paddr: u32, value: u8) -> Result<(), MemFault> {
        let i = self.check(paddr, 1)?;
        self.ram[i] = value;
        self.touch(paddr);
        Ok(())
    }

    /// Copies a slice into RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn write_bytes(&mut self, paddr: u32, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let i = paddr as usize;
        self.ram[i..i + bytes.len()].copy_from_slice(bytes);
        // DMA can span pages; every touched page must invalidate.
        let end = paddr + bytes.len() as u32 - 1;
        for page in (paddr >> PAGE_SHIFT)..=(end >> PAGE_SHIFT) {
            self.touch(page << PAGE_SHIFT);
        }
    }

    /// Reads a slice out of RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn read_bytes(&self, paddr: u32, len: usize) -> &[u8] {
        let i = paddr as usize;
        &self.ram[i..i + len]
    }

    /// Raw view of all RAM (used by the state hasher).
    pub fn raw(&self) -> &[u8] {
        &self.ram
    }

    /// Captures RAM and the per-page write generations for a
    /// whole-machine snapshot.
    pub fn snapshot(&self) -> crate::snapshot::MemSnapshot {
        crate::snapshot::MemSnapshot {
            ram: self.ram.clone(),
            page_gens: self.page_gens.clone(),
        }
    }

    /// Restores state captured by [`Memory::snapshot`]. Generations are
    /// restored verbatim: block/superblock caches are rebuilt empty
    /// after a restore, so they can only record generations at or after
    /// the captured values and SMC detection stays sound.
    pub fn restore(&mut self, snap: &crate::snapshot::MemSnapshot) {
        self.ram = snap.ram.clone();
        self.page_gens = snap.page_gens.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_u32(0), Ok(0x0102_0304));
        // Little-endian byte order.
        assert_eq!(m.read_u8(0), Ok(0x04));
        assert_eq!(m.read_u8(3), Ok(0x01));
    }

    #[test]
    fn byte_round_trip() {
        let mut m = Memory::new(16);
        m.write_u8(7, 0xAB).unwrap();
        assert_eq!(m.read_u8(7), Ok(0xAB));
    }

    #[test]
    fn io_window_faults_as_io() {
        let m = Memory::new(4096);
        assert_eq!(m.kind(IO_BASE), AddrKind::Io);
        assert_eq!(m.kind(IO_BASE + IO_SIZE - 4), AddrKind::Io);
        assert_eq!(
            m.read_u32(IO_BASE + 8),
            Err(MemFault::Io { paddr: IO_BASE + 8 })
        );
    }

    #[test]
    fn unmapped_faults() {
        let mut m = Memory::new(4096);
        assert_eq!(m.kind(0x8000_0000), AddrKind::Unmapped);
        assert_eq!(m.read_u32(4096), Err(MemFault::Unmapped { paddr: 4096 }));
        assert_eq!(
            m.write_u32(0x7FFF_FFFC, 1),
            Err(MemFault::Unmapped { paddr: 0x7FFF_FFFC })
        );
        // Word straddling the end of RAM is unmapped, not a partial write.
        assert_eq!(
            m.write_u32(4094, 1),
            Err(MemFault::Unmapped { paddr: 4094 })
        );
    }

    #[test]
    fn bulk_access() {
        let mut m = Memory::new(32);
        m.write_bytes(4, &[1, 2, 3]);
        assert_eq!(m.read_bytes(4, 3), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn ram_cannot_reach_io_window() {
        let _ = Memory::new(IO_BASE as usize + 1);
    }

    #[test]
    fn writes_bump_the_page_generation() {
        let mut m = Memory::new(3 * PAGE_SIZE as usize);
        let g0 = m.page_gen(0);
        let g1 = m.page_gen(PAGE_SIZE);
        m.write_u8(4, 1).unwrap();
        assert_ne!(m.page_gen(0), g0, "byte write must bump its page");
        assert_eq!(m.page_gen(PAGE_SIZE), g1, "other pages untouched");
        let g1 = m.page_gen(PAGE_SIZE);
        m.write_u32(PAGE_SIZE + 8, 7).unwrap();
        assert_ne!(m.page_gen(PAGE_SIZE), g1, "word write must bump its page");
        // Reads never bump.
        let g = m.page_gen(0);
        let _ = m.read_u32(0);
        let _ = m.read_u8(1);
        assert_eq!(m.page_gen(0), g);
        // Out-of-RAM queries are harmless.
        assert_eq!(m.page_gen(0x8000_0000), 0);
    }

    #[test]
    fn bulk_writes_bump_every_spanned_page() {
        let mut m = Memory::new(3 * PAGE_SIZE as usize);
        let (g0, g1, g2) = (
            m.page_gen(0),
            m.page_gen(PAGE_SIZE),
            m.page_gen(2 * PAGE_SIZE),
        );
        // DMA spanning pages 0..=2.
        m.write_bytes(PAGE_SIZE - 8, &vec![1; (PAGE_SIZE + 16) as usize]);
        assert_ne!(m.page_gen(0), g0);
        assert_ne!(m.page_gen(PAGE_SIZE), g1);
        assert_ne!(m.page_gen(2 * PAGE_SIZE), g2);
        // Empty writes are a complete no-op (no generation bump).
        let g = m.page_gen(0);
        m.write_bytes(0, &[]);
        assert_eq!(m.page_gen(0), g);
    }

    #[test]
    fn reset_zeroes_and_invalidates() {
        let mut m = Memory::new(2 * PAGE_SIZE as usize);
        m.write_u32(16, 0xDEAD_BEEF).unwrap();
        let g = m.page_gen(16);
        m.reset();
        assert_eq!(m.read_u32(16), Ok(0));
        assert_ne!(m.page_gen(16), g, "reset must invalidate cached blocks");
        assert_eq!(m.size(), 2 * PAGE_SIZE as usize);
    }
}
