//! Physical memory and the memory-mapped I/O window.
//!
//! Like PA-RISC, I/O controller registers live in physical address space
//! and are reached with ordinary loads and stores. Accesses that fall in
//! the I/O window are not satisfied by RAM; the CPU reports them to its
//! embedder (the bare machine routes them to devices, the hypervisor
//! intercepts them — paper §3.2, Environment Instruction Assumption).

/// Base physical address of the memory-mapped I/O window.
pub const IO_BASE: u32 = 0xF000_0000;
/// Size of the I/O window in bytes.
pub const IO_SIZE: u32 = 0x0001_0000;

/// Page size (bytes) shared by the MMU and page tables.
pub const PAGE_SIZE: u32 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Classification of a physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddrKind {
    /// Backed by RAM.
    Ram,
    /// Inside the memory-mapped I/O window.
    Io,
    /// Neither RAM nor I/O.
    Unmapped,
}

/// Byte-addressable little-endian physical memory.
///
/// # Examples
///
/// ```
/// use hvft_machine::mem::Memory;
///
/// let mut m = Memory::new(4096);
/// m.write_u32(8, 0xCAFEBABE).unwrap();
/// assert_eq!(m.read_u32(8), Ok(0xCAFEBABE));
/// ```
#[derive(Clone)]
pub struct Memory {
    ram: Vec<u8>,
}

/// A physical access that cannot be satisfied by RAM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// Address is in the I/O window; the embedder must handle it.
    Io {
        /// The physical address.
        paddr: u32,
    },
    /// Address is outside RAM and the I/O window.
    Unmapped {
        /// The physical address.
        paddr: u32,
    },
}

impl Memory {
    /// Allocates zeroed RAM of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the RAM region would overlap the I/O window.
    pub fn new(bytes: usize) -> Self {
        assert!(
            (bytes as u64) <= u64::from(IO_BASE),
            "RAM of {bytes} bytes would overlap the I/O window at {IO_BASE:#x}"
        );
        Memory {
            ram: vec![0; bytes],
        }
    }

    /// RAM size in bytes.
    pub fn size(&self) -> usize {
        self.ram.len()
    }

    /// Classifies a physical address.
    pub fn kind(&self, paddr: u32) -> AddrKind {
        if (paddr as usize) < self.ram.len() {
            AddrKind::Ram
        } else if (IO_BASE..IO_BASE.wrapping_add(IO_SIZE)).contains(&paddr) {
            AddrKind::Io
        } else {
            AddrKind::Unmapped
        }
    }

    fn check(&self, paddr: u32, len: u32) -> Result<usize, MemFault> {
        let end = paddr as u64 + u64::from(len);
        if end <= self.ram.len() as u64 {
            Ok(paddr as usize)
        } else if self.kind(paddr) == AddrKind::Io {
            Err(MemFault::Io { paddr })
        } else {
            Err(MemFault::Unmapped { paddr })
        }
    }

    /// Reads a little-endian word. `paddr` must be 4-byte aligned (the CPU
    /// checks alignment before calling).
    pub fn read_u32(&self, paddr: u32) -> Result<u32, MemFault> {
        let i = self.check(paddr, 4)?;
        Ok(u32::from_le_bytes([
            self.ram[i],
            self.ram[i + 1],
            self.ram[i + 2],
            self.ram[i + 3],
        ]))
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, paddr: u32, value: u32) -> Result<(), MemFault> {
        let i = self.check(paddr, 4)?;
        self.ram[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&self, paddr: u32) -> Result<u8, MemFault> {
        let i = self.check(paddr, 1)?;
        Ok(self.ram[i])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, paddr: u32, value: u8) -> Result<(), MemFault> {
        let i = self.check(paddr, 1)?;
        self.ram[i] = value;
        Ok(())
    }

    /// Copies a slice into RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn write_bytes(&mut self, paddr: u32, bytes: &[u8]) {
        let i = paddr as usize;
        self.ram[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads a slice out of RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn read_bytes(&self, paddr: u32, len: usize) -> &[u8] {
        let i = paddr as usize;
        &self.ram[i..i + len]
    }

    /// Raw view of all RAM (used by the state hasher).
    pub fn raw(&self) -> &[u8] {
        &self.ram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_u32(0), Ok(0x0102_0304));
        // Little-endian byte order.
        assert_eq!(m.read_u8(0), Ok(0x04));
        assert_eq!(m.read_u8(3), Ok(0x01));
    }

    #[test]
    fn byte_round_trip() {
        let mut m = Memory::new(16);
        m.write_u8(7, 0xAB).unwrap();
        assert_eq!(m.read_u8(7), Ok(0xAB));
    }

    #[test]
    fn io_window_faults_as_io() {
        let m = Memory::new(4096);
        assert_eq!(m.kind(IO_BASE), AddrKind::Io);
        assert_eq!(m.kind(IO_BASE + IO_SIZE - 4), AddrKind::Io);
        assert_eq!(
            m.read_u32(IO_BASE + 8),
            Err(MemFault::Io { paddr: IO_BASE + 8 })
        );
    }

    #[test]
    fn unmapped_faults() {
        let mut m = Memory::new(4096);
        assert_eq!(m.kind(0x8000_0000), AddrKind::Unmapped);
        assert_eq!(m.read_u32(4096), Err(MemFault::Unmapped { paddr: 4096 }));
        assert_eq!(
            m.write_u32(0x7FFF_FFFC, 1),
            Err(MemFault::Unmapped { paddr: 0x7FFF_FFFC })
        );
        // Word straddling the end of RAM is unmapped, not a partial write.
        assert_eq!(
            m.write_u32(4094, 1),
            Err(MemFault::Unmapped { paddr: 4094 })
        );
    }

    #[test]
    fn bulk_access() {
        let mut m = Memory::new(32);
        m.write_bytes(4, &[1, 2, 3]);
        assert_eq!(m.read_bytes(4, 3), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn ram_cannot_reach_io_window() {
        let _ = Memory::new(IO_BASE as usize + 1);
    }
}
