//! Tier-2 execution: template-compiled superblocks.
//!
//! A `SuperBlock` is the unit of compiled code: a run of consecutive
//! instruction words starting at a physical fetch address, translated
//! into an array of compact `Op` records — each a pre-specialized
//! opcode with its operands (register names, immediates, pre-shifted
//! constants, branch wiring) resolved at compile time. Execution is a
//! single dense jump table over the opcode — the safe-Rust analogue of
//! threaded code's computed goto — with every op body inlined into one
//! loop frame: no fetch, no decode, no per-instruction operand
//! unpacking, no call/return per instruction, and the loop state
//! (op index, budget, register-file base) lives in machine registers
//! across ops.
//!
//! Superblocks are larger than the basic blocks of [`crate::block`]:
//! compilation is a *trace* — it continues through conditional
//! branches (the not-taken path falls through to the next op) and
//! follows the static target of unconditional `jal`s, so a call and
//! its callee compile into one superblock. Each op records its own
//! entry-relative PC offset, which is what lets the trace leave
//! address order. Any branch or `jal` whose target was compiled into
//! the trace is wired directly to the target op index, so a hot loop —
//! calls included — executes entirely inside one superblock without
//! re-entering the dispatcher. Compilation stops at the first
//! `jalr`-class register-indirect jump, at any privileged or trapping
//! instruction (`gate`, `brk`, every environment op), at an
//! undecodable word, or at an already-compiled address.
//!
//! Unlike basic blocks, a trace may **cross pages**: a `jal` whose
//! target lies in another page (up to `MAX_TRACE_PAGES` per trace)
//! extends the trace when that page translates executably *right
//! now*, and the trace records the secondary page as a
//! `(entry-relative virtual base, physical page, write generation)`
//! dependency. Every entry path — the dispatcher probe, the front
//! table, and `JitCache::peek` during chaining — re-validates *all*
//! recorded pages: generations must be unwritten and each secondary
//! virtual page must still translate to the recorded physical page
//! (via side-effect-free TLB peeks, so validation frequency never
//! perturbs snapshotted accounting). Straight-line flow still stops
//! at an unregistered page edge, which keeps the dependency set tied
//! to explicit call structure.
//!
//! The trace-terminating `jalr` carries an **inline return cache**: a
//! per-op slot predicting the target superblock (virtual target,
//! physical entry, arena index) plus everything the prediction's
//! translation depended on (PSW key, TLB content generation). On a
//! verified hit the executor jumps in-frame — no translate, no map
//! probe; on a miss it takes the ordinary `chain!` path and
//! re-records the slot, so a monomorphic call site (the overwhelming
//! case: a `ret` with one hot caller) stabilizes after one miss.
//!
//! # Exactness
//!
//! The engine preserves the paper's Instruction-Stream Interrupt
//! Assumption by construction, extending the argument in
//! [`crate::block`] from basic blocks to superblocks:
//!
//! - **retirement clamp**: a superblock entry receives a budget of
//!   `min(caller budget, rctr)` and executes at most that many ops,
//!   each retiring exactly one instruction; internal loop iterations
//!   spend budget like any other op, so the recovery counter expires
//!   between instructions at the same retirement count the per-step
//!   path traps at;
//! - **constant check inputs**: every instruction that can change the
//!   pending-interrupt predicate, the PSW or the translation state is
//!   privileged and privileged instructions are never compiled into a
//!   superblock — so the dispatcher's entry checks and the single
//!   entry translation stay valid across internal loops;
//! - **exact faults**: a faulting op reports the same [`Exit`] as the
//!   per-step path with the PC on the faulting instruction and no
//!   retirement, by routing loads and stores through the same
//!   `access_load`/`access_store` helpers the other engines use;
//! - **self-modifying code**: a superblock records the write
//!   generation of *every* constituent page at compile time; the
//!   dispatcher refuses stale entries, and every compiled store
//!   re-checks all of the superblock's pages so a trace that patches
//!   any page it was compiled from — its own or a cross-page callee's
//!   — abandons its compiled tail exactly like the block engine does;
//! - **cross-page entry validation**: a secondary page's translation
//!   is re-checked against the recorded physical page on every entry,
//!   so a TLB remap, purge or privilege change makes the trace
//!   unreachable (the block engine then takes the exact fault, if
//!   any, at the exact instruction the per-step path would).

use crate::cpu::{alu_imm_value, alu_value, Cpu, Exit};
use crate::exec::ExecStats;
use crate::hash::IntBuildHasher;
use crate::mem::{Memory, PAGE_SIZE};
use crate::tlb::{TlbAccess, TlbResult};
use crate::trap::Trap;
use hvft_isa::codec::decode;
use hvft_isa::instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
use hvft_isa::reg::Reg;
use std::cell::Cell;
use std::collections::HashMap;

/// Executions of a cold address before it is compiled.
pub(crate) const PROMOTE_THRESHOLD: u32 = 16;

/// Cap on compiled superblocks; crossing it clears the cache wholesale
/// (same rationale as the block cache's cap).
const MAX_SUPERBLOCKS: usize = 4096;

/// Cap on tracked cold addresses before the heat table is reset.
const MAX_HEAT_ENTRIES: usize = 1 << 16;

/// Slots in the direct-mapped front table (power of two).
const FRONT_SLOTS: usize = 128;
/// Front tag marking an empty slot (no RAM block address collides).
const FRONT_EMPTY: u32 = u32::MAX;

/// Branch-wiring sentinel: the target is outside the compiled span.
const NO_TARGET: u32 = u32::MAX;

/// Pages a single trace may execute from (entry page included). Every
/// entry validates every recorded page, so the cap bounds both the
/// per-entry validation cost and the blast radius of an invalidation.
pub(crate) const MAX_TRACE_PAGES: usize = 4;

/// Return-slot sentinel: `jalr` masks the low two target bits, so no
/// computed target ever equals 1 and an empty slot can never hit.
const RET_EMPTY: u32 = 1;

/// Pre-specialized opcode of one compiled [`Op`]. One variant per
/// instruction template: the ALU operation, memory width or branch
/// condition is the *variant*, not a field, so the dispatch loop's
/// jump table lands directly in a body with the operation constant
/// already folded in.
#[derive(Clone, Copy, Debug)]
enum Kind {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Divu,
    Remu,
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Slli,
    Srli,
    Srai,
    /// The `lui` shift happened at compile time; `imm` is the result.
    Lui,
    Nop,
    Lw,
    Lb,
    Lbu,
    Sw,
    Sb,
    Sbu,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Jal,
    Jalr,
    Probe,
}

/// One compiled instruction: a pre-specialized opcode plus
/// pre-resolved operands — 16 bytes, so op-record indexing is a
/// single shift and four ops share a cache line.
#[derive(Clone, Copy, Debug)]
struct Op {
    kind: Kind,
    /// Destination register (link register for `jal`/`jalr`).
    rd: Reg,
    /// First source: `rs1`, the load/`jalr` base, or the store value.
    rs1: Reg,
    /// Second source: `rs2`, branch comparand, or the store base.
    rs2: Reg,
    /// Immediate, pre-resolved per kind: sign-extended value,
    /// displacement, branch byte offset, or the pre-shifted `lui`
    /// constant.
    imm: i32,
    /// Branch/`jal` taken-target op index, or [`NO_TARGET`].
    target: u32,
    /// Byte offset of this op's virtual PC from the superblock's
    /// entry PC (wrapping). Ops are *not* address-contiguous — a
    /// trace follows `jal`s — so every PC-observing path derives the
    /// PC from this field, never from the op index.
    off: u32,
}

/// One secondary page of a cross-page trace: where the page sits
/// relative to the entry, and what it must still look like for the
/// compiled code to be entered.
#[derive(Clone, Copy, Debug)]
struct PageDep {
    /// Entry-relative (wrapping) byte offset of the page's virtual
    /// base address. Well-defined for any aliasing entry VPC because
    /// translation preserves the in-page offset.
    voff: u32,
    /// Physical page the virtual page translated to at compile time.
    ppage: u32,
    /// Write generation of that physical page at compile time.
    gen: u64,
}

/// Inline return-cache slot of a trace-terminating `jalr`: the
/// predicted target superblock plus everything the prediction's
/// translation depended on.
#[derive(Clone, Copy, Debug)]
struct RetSlot {
    /// Predicted virtual target, or [`RET_EMPTY`].
    vpc: u32,
    /// Physical entry address the target translated to when recorded.
    paddr: u32,
    /// Arena index of the predicted superblock when recorded.
    idx: u32,
    /// TLB content generation the prediction was recorded under.
    tlb_gen: u64,
    /// Packed translation inputs when recorded (see [`psw_key`]).
    psw_key: u32,
}

impl RetSlot {
    const EMPTY: RetSlot = RetSlot {
        vpc: RET_EMPTY,
        paddr: 0,
        idx: 0,
        tlb_gen: 0,
        psw_key: 0,
    };
}

/// The PSW inputs a predicted return target's translation depends on:
/// the translation-enable bit and the privilege level. A prediction is
/// reused only while these and the TLB content generation are
/// unchanged, which is what makes skipping the re-translation sound —
/// translation is a pure function of (vaddr, these bits, TLB
/// contents).
#[inline]
fn psw_key(cpu: &Cpu) -> u32 {
    (u32::from(cpu.psw.cpl) << 1) | u32::from(cpu.psw.translation)
}

/// A compiled superblock.
#[derive(Debug)]
pub(crate) struct SuperBlock {
    ops: Box<[Op]>,
    /// Page-aligned physical address of the entry page.
    page_addr: u32,
    /// Write generation of the entry page at compile time.
    gen: u64,
    /// Physical address of the entry instruction — the cache key this
    /// superblock was compiled for (return-slot identity checks
    /// compare it, since arena indices are reused across clears).
    entry_paddr: u32,
    /// Secondary pages a cross-page trace executes from, in discovery
    /// order; empty for the common single-page trace.
    extra_pages: Box<[PageDep]>,
    /// Entry-relative byte offset of the PC after falling off the
    /// final op (`ops.last().off + 4`).
    end_off: u32,
    /// Return-cache slot of the trace-terminating `jalr`, if any.
    /// `Cell` because predictions are recorded while the executor
    /// holds a shared borrow of the cache (`run_chain` takes `&self`);
    /// the dispatcher is owned per-CPU and moved — never shared —
    /// across threads, so interior mutability without `Sync` is
    /// exactly the contract.
    ret_slot: Cell<RetSlot>,
}

impl SuperBlock {
    /// Empty marker for an address that does not compile (until its
    /// page changes again): the block engine owns it.
    fn marker(paddr: u32, gen: u64) -> SuperBlock {
        SuperBlock {
            ops: Box::new([]),
            page_addr: paddr & !(PAGE_SIZE - 1),
            gen,
            entry_paddr: paddr,
            extra_pages: Box::new([]),
            end_off: 0,
            ret_slot: Cell::new(RetSlot::EMPTY),
        }
    }

    /// True when any constituent page has been written since compile
    /// time (SMC or DMA): the compiled trace may no longer match
    /// memory.
    #[inline]
    fn pages_stale(&self, mem: &Memory) -> bool {
        mem.page_gen(self.page_addr) != self.gen
            || self
                .extra_pages
                .iter()
                .any(|d| mem.page_gen(d.ppage) != d.gen)
    }

    /// Full entry validation for an entry at virtual PC `vpc`: every
    /// constituent page unwritten since compile time *and* every
    /// secondary virtual page still translating — executably, at the
    /// current privilege — to the physical page the trace was compiled
    /// from. The common single-page trace pays one generation compare.
    #[inline]
    fn fresh(&self, vpc: u32, cpu: &Cpu, mem: &Memory) -> bool {
        !self.pages_stale(mem)
            && self.extra_pages.iter().all(|d| {
                cpu.peek_translate(vpc.wrapping_add(d.voff), TlbAccess::Execute) == Some(d.ppage)
            })
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// Builds the op for `insn` at entry-relative byte offset `off`;
/// `index_of` maps compiled offsets to op indices for branch/`jal`
/// wiring. `insn` must be compilable (the first pass guarantees it).
fn build_op(off: u32, index_of: &HashMap<u32, u32, IntBuildHasher>, insn: Instruction) -> Op {
    let op = |kind: Kind, rd: Reg, rs1: Reg, rs2: Reg, imm: i32, target: u32| Op {
        kind,
        rd,
        rs1,
        rs2,
        imm,
        target,
        off,
    };
    // Wires a PC-relative transfer to the op index of its target when
    // the target was compiled into this trace (misaligned targets are
    // never compiled, so they fall out naturally).
    let wire = |offset: i32| {
        index_of
            .get(&off.wrapping_add(offset as u32))
            .copied()
            .unwrap_or(NO_TARGET)
    };
    let z = Reg::ZERO;
    use Instruction as I;
    match insn {
        I::Alu {
            op: a,
            rd,
            rs1,
            rs2,
        } => {
            let kind = match a {
                AluOp::Add => Kind::Add,
                AluOp::Sub => Kind::Sub,
                AluOp::And => Kind::And,
                AluOp::Or => Kind::Or,
                AluOp::Xor => Kind::Xor,
                AluOp::Sll => Kind::Sll,
                AluOp::Srl => Kind::Srl,
                AluOp::Sra => Kind::Sra,
                AluOp::Slt => Kind::Slt,
                AluOp::Sltu => Kind::Sltu,
                AluOp::Mul => Kind::Mul,
                AluOp::Divu => Kind::Divu,
                AluOp::Remu => Kind::Remu,
            };
            op(kind, rd, rs1, rs2, 0, NO_TARGET)
        }
        I::AluImm {
            op: a,
            rd,
            rs1,
            imm,
        } => {
            let kind = match a {
                AluImmOp::Addi => Kind::Addi,
                AluImmOp::Andi => Kind::Andi,
                AluImmOp::Ori => Kind::Ori,
                AluImmOp::Xori => Kind::Xori,
                AluImmOp::Slti => Kind::Slti,
                AluImmOp::Slli => Kind::Slli,
                AluImmOp::Srli => Kind::Srli,
                AluImmOp::Srai => Kind::Srai,
            };
            op(kind, rd, rs1, z, imm, NO_TARGET)
        }
        I::Lui { rd, imm } => op(Kind::Lui, rd, z, z, (imm << 13) as i32, NO_TARGET),
        I::Nop => op(Kind::Nop, z, z, z, 0, NO_TARGET),
        I::Load {
            width,
            rd,
            base,
            disp,
        } => {
            let kind = match width {
                MemWidth::Word => Kind::Lw,
                MemWidth::Byte => Kind::Lb,
                MemWidth::ByteU => Kind::Lbu,
            };
            op(kind, rd, base, z, disp, NO_TARGET)
        }
        I::Store {
            width,
            rs,
            base,
            disp,
        } => {
            let kind = match width {
                MemWidth::Word => Kind::Sw,
                MemWidth::Byte => Kind::Sb,
                MemWidth::ByteU => Kind::Sbu,
            };
            op(kind, z, rs, base, disp, NO_TARGET)
        }
        I::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let kind = match cond {
                BranchCond::Eq => Kind::Beq,
                BranchCond::Ne => Kind::Bne,
                BranchCond::Lt => Kind::Blt,
                BranchCond::Ge => Kind::Bge,
                BranchCond::Ltu => Kind::Bltu,
                BranchCond::Geu => Kind::Bgeu,
            };
            op(kind, z, rs1, rs2, offset, wire(offset))
        }
        I::Jal { rd, offset } => op(Kind::Jal, rd, z, z, offset, wire(offset)),
        I::Jalr { rd, base, disp } => op(Kind::Jalr, rd, base, z, disp, NO_TARGET),
        I::Probe { rd, rs } => op(Kind::Probe, rd, rs, z, 0, NO_TARGET),
        other => unreachable!("non-compilable instruction {other:?} reached build_op"),
    }
}

/// Compiles the superblock (trace) starting at physical address
/// `paddr` with the entry's virtual PC `entry_vpc` (they must agree in
/// their in-page offset — translation preserves it), or `None` when no
/// compilable instruction starts there. `cpu` supplies the *current*
/// translation state: a `jal` whose target lies in another page
/// extends the trace only when that page translates executably right
/// now, and the page is recorded as a dependency every entry
/// re-validates.
fn compile(paddr: u32, entry_vpc: u32, gen: u64, cpu: &Cpu, mem: &Memory) -> Option<SuperBlock> {
    debug_assert_eq!(paddr & (PAGE_SIZE - 1), entry_vpc & (PAGE_SIZE - 1));
    let page_mask = !(PAGE_SIZE - 1);
    let page_addr = paddr & page_mask;
    // Constituent pages as (entry-relative byte offset of the page's
    // virtual base, physical page address); the entry page is
    // `pages[0]`. Like op offsets, the page offsets are *wrapping*
    // deltas from `entry_vpc`.
    let mut pages: Vec<(u32, u32)> = vec![(0u32.wrapping_sub(paddr & (PAGE_SIZE - 1)), page_addr)];
    // The trace in compile order: `(instruction, entry-relative byte
    // offset)`. Offsets are *wrapping* deltas — a `jal` redirect may
    // target an address before the entry.
    let mut insns: Vec<(Instruction, u32)> = Vec::new();
    let mut index_of: HashMap<u32, u32, IntBuildHasher> = HashMap::default();
    let mut off: u32 = 0;
    loop {
        // Never compile the same address twice (this also bounds the
        // trace at MAX_TRACE_PAGES pages of ops).
        if index_of.contains_key(&off) {
            break;
        }
        let vaddr = entry_vpc.wrapping_add(off);
        let page_voff = (vaddr & page_mask).wrapping_sub(entry_vpc);
        // Straight-line flow only walks pages the trace has already
        // registered: falling off the edge of the last registered page
        // ends the trace, so the dependency set grows only at explicit
        // cross-page calls.
        let Some(ppage) = pages
            .iter()
            .find_map(|&(v, p)| (v == page_voff).then_some(p))
        else {
            break;
        };
        let pa = ppage | (vaddr & (PAGE_SIZE - 1));
        let Ok(word) = mem.read_u32(pa) else {
            break;
        };
        let Ok(insn) = decode(word) else {
            break;
        };
        use Instruction as I;
        // Privileged, trapping and environment instructions are never
        // compiled; execution reaching them leaves the superblock and
        // the interpreter takes over.
        if !matches!(
            insn,
            I::Alu { .. }
                | I::AluImm { .. }
                | I::Lui { .. }
                | I::Nop
                | I::Load { .. }
                | I::Store { .. }
                | I::Probe { .. }
                | I::Branch { .. }
                | I::Jal { .. }
                | I::Jalr { .. }
        ) {
            break;
        }
        index_of.insert(off, insns.len() as u32);
        insns.push((insn, off));
        match insn {
            // Trace compilation follows the static target of an
            // unconditional `jal` — a call's callee or a jump's
            // continuation lands in the same superblock — when it is
            // 4-aligned and not already compiled (the wiring pass then
            // turns the `jal` into an in-span jump). A target in an
            // unregistered page extends the dependency set if the page
            // translates executably under the current state and the
            // page budget allows; otherwise the `jal` is the final op.
            I::Jal { offset, .. } => {
                let toff = off.wrapping_add(offset as u32);
                if offset % 4 != 0 || index_of.contains_key(&toff) {
                    break;
                }
                let tvoff = (entry_vpc.wrapping_add(toff) & page_mask).wrapping_sub(entry_vpc);
                if !pages.iter().any(|&(v, _)| v == tvoff) {
                    if pages.len() >= MAX_TRACE_PAGES {
                        break;
                    }
                    let vbase = entry_vpc.wrapping_add(tvoff);
                    let Some(pbase) = cpu.peek_translate(vbase, TlbAccess::Execute) else {
                        break;
                    };
                    pages.push((tvoff, pbase & page_mask));
                }
                off = toff;
            }
            // A register-indirect jump has no static target: final op.
            I::Jalr { .. } => break,
            // Straight-line ops and conditional branches extend the
            // trace (the not-taken path falls through).
            _ => off = off.wrapping_add(4),
        }
    }
    let &(_, last_off) = insns.last()?;
    let ops: Vec<Op> = insns
        .iter()
        .map(|&(insn, o)| build_op(o, &index_of, insn))
        .collect();
    // A page registered at a `jal` follow whose first word then failed
    // to compile contributed no ops: drop it rather than record a
    // phantom dependency.
    let extra_pages: Vec<PageDep> = pages[1..]
        .iter()
        .filter(|&&(voff, _)| {
            insns.iter().any(|&(_, o)| {
                (entry_vpc.wrapping_add(o) & page_mask).wrapping_sub(entry_vpc) == voff
            })
        })
        .map(|&(voff, ppage)| PageDep {
            voff,
            ppage,
            gen: mem.page_gen(ppage),
        })
        .collect();
    Some(SuperBlock {
        ops: ops.into_boxed_slice(),
        page_addr,
        gen,
        entry_paddr: paddr,
        extra_pages: extra_pages.into_boxed_slice(),
        end_off: last_off.wrapping_add(4),
        ret_slot: Cell::new(RetSlot::EMPTY),
    })
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

impl SuperBlock {
    /// Number of compiled ops (for tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }
}

impl JitCache {
    /// Executes the superblock at arena index `start` with the CPU's
    /// PC at the corresponding virtual address, retiring at most
    /// `budget` instructions (`budget` must be positive and already
    /// clamped by the recovery counter), *chaining* straight into the
    /// next compiled superblock whenever a transfer leaves one: the
    /// op index, budget and retirement count stay in this one frame
    /// across superblock boundaries, and the architectural sync
    /// happens once on the way out. Chaining is sound because nothing
    /// a superblock executes can change the dispatcher's entry
    /// predicates (every PSW/ctl/TLB writer is privileged, hence
    /// never compiled), and the recovery counter is spent through
    /// `budget`; anything irregular — an unaligned or untranslatable
    /// target, cold or stale code — returns to the full dispatcher.
    ///
    /// Returns the number retired and the exit the embedder must
    /// handle, if any; on return the PC, retired count and recovery
    /// counter are synced.
    ///
    /// Each op body routes through the same shared semantics helpers
    /// (`alu_value`, `alu_imm_value`, `access_load`, `access_store`)
    /// as the step and block engines, with the operation passed as a
    /// constant that folds away after inlining — so the three engines
    /// cannot drift.
    pub(crate) fn run_chain(
        &self,
        start: u32,
        cpu: &mut Cpu,
        mem: &mut Memory,
        budget: u64,
        stats: &mut ExecStats,
    ) -> (u64, Option<Exit>) {
        debug_assert!(budget > 0);
        let mut sb = self.get(start);
        let mut ops = &sb.ops[..];
        let mut n = ops.len();
        let mut entry_vpc = cpu.pc;
        let mut i: usize = 0;
        let mut executed: u64 = 0;
        let exit = 'run: loop {
            if executed == budget {
                // Budget (caller's or the recovery counter's) spent:
                // stop *between* instructions, PC on the next op.
                cpu.pc = entry_vpc.wrapping_add(ops[i].off);
                break None;
            }
            let op = &ops[i];
            // Virtual PC of this op, derived from its recorded entry
            // offset (ops are a trace, not address-contiguous) — only
            // transfers and exits consume it, so straight-line ops
            // never materialize it (`vpc!` is a macro, not a binding,
            // precisely for that).
            macro_rules! vpc {
                () => {
                    entry_vpc.wrapping_add(op.off)
                };
            }

            // Control-flow helpers shared by the op bodies below.
            // `chain!` is the out-of-superblock path: with the PC
            // already set, hop into the next compiled superblock if
            // one exists (fresh and aligned), else return to the
            // dispatcher. `next!` retires the op and falls through
            // (chaining past the last op); `fault!` leaves with the
            // PC on the op, which did *not* retire; `taken!` retires
            // a transfer, continuing at a wired in-span op index or
            // chaining at the target.
            macro_rules! chain {
                () => {{
                    if executed == budget || !cpu.pc.is_multiple_of(4) {
                        break 'run None;
                    }
                    let Ok(pa) = cpu.translate(cpu.pc, TlbAccess::Execute) else {
                        break 'run None;
                    };
                    match self.peek(pa, cpu, mem) {
                        Some(next) => {
                            sb = self.get(next);
                            ops = &sb.ops[..];
                            n = ops.len();
                            i = 0;
                            entry_vpc = cpu.pc;
                            continue 'run;
                        }
                        None => break 'run None,
                    }
                }};
            }
            macro_rules! next {
                () => {{
                    executed += 1;
                    i += 1;
                    if i == n {
                        cpu.pc = entry_vpc.wrapping_add(sb.end_off);
                        chain!()
                    }
                    continue 'run;
                }};
            }
            macro_rules! fault {
                ($e:expr) => {{
                    cpu.pc = vpc!();
                    break 'run Some($e);
                }};
            }
            macro_rules! taken {
                ($byte_offset:expr) => {{
                    executed += 1;
                    if op.target != NO_TARGET {
                        i = op.target as usize;
                        continue 'run;
                    }
                    cpu.pc = vpc!().wrapping_add($byte_offset as u32);
                    chain!()
                }};
            }
            macro_rules! alu {
                ($v:ident) => {{
                    let a = cpu.reg(op.rs1);
                    let b = cpu.reg(op.rs2);
                    match alu_value(AluOp::$v, a, b) {
                        Some(v) => {
                            cpu.set_reg(op.rd, v);
                            next!()
                        }
                        None => fault!(Exit::Trap(Trap::ArithmeticError)),
                    }
                }};
            }
            macro_rules! alu_imm {
                ($v:ident) => {{
                    let v = alu_imm_value(AluImmOp::$v, cpu.reg(op.rs1), op.imm);
                    cpu.set_reg(op.rd, v);
                    next!()
                }};
            }
            macro_rules! load {
                ($w:ident) => {{
                    match cpu.access_load(MemWidth::$w, op.rd, op.rs1, op.imm, mem) {
                        Ok(v) => {
                            cpu.set_reg(op.rd, v);
                            next!()
                        }
                        Err(e) => fault!(e),
                    }
                }};
            }
            macro_rules! store {
                ($w:ident) => {{
                    match cpu.access_store(MemWidth::$w, op.rs1, op.rs2, op.imm, mem) {
                        Ok(()) => {
                            // The store may have patched one of this
                            // superblock's own pages — the entry page
                            // or a cross-page callee's — ahead of the
                            // program counter: abandon the compiled
                            // tail and re-enter the dispatcher.
                            if sb.pages_stale(mem) {
                                executed += 1;
                                cpu.pc = vpc!().wrapping_add(4);
                                break 'run None;
                            }
                            next!()
                        }
                        Err(e) => fault!(e),
                    }
                }};
            }
            macro_rules! branch {
                (|$a:ident, $b:ident| $cond:expr) => {{
                    let $a = cpu.reg(op.rs1);
                    let $b = cpu.reg(op.rs2);
                    if $cond {
                        taken!(op.imm)
                    }
                    next!()
                }};
            }

            match op.kind {
                Kind::Add => alu!(Add),
                Kind::Sub => alu!(Sub),
                Kind::And => alu!(And),
                Kind::Or => alu!(Or),
                Kind::Xor => alu!(Xor),
                Kind::Sll => alu!(Sll),
                Kind::Srl => alu!(Srl),
                Kind::Sra => alu!(Sra),
                Kind::Slt => alu!(Slt),
                Kind::Sltu => alu!(Sltu),
                Kind::Mul => alu!(Mul),
                Kind::Divu => alu!(Divu),
                Kind::Remu => alu!(Remu),
                Kind::Addi => alu_imm!(Addi),
                Kind::Andi => alu_imm!(Andi),
                Kind::Ori => alu_imm!(Ori),
                Kind::Xori => alu_imm!(Xori),
                Kind::Slti => alu_imm!(Slti),
                Kind::Slli => alu_imm!(Slli),
                Kind::Srli => alu_imm!(Srli),
                Kind::Srai => alu_imm!(Srai),
                Kind::Lui => {
                    // The shift happened at compile time.
                    cpu.set_reg(op.rd, op.imm as u32);
                    next!()
                }
                Kind::Nop => next!(),
                Kind::Lw => load!(Word),
                Kind::Lb => load!(Byte),
                Kind::Lbu => load!(ByteU),
                Kind::Sw => store!(Word),
                Kind::Sb => store!(Byte),
                Kind::Sbu => store!(ByteU),
                Kind::Beq => branch!(|a, b| a == b),
                Kind::Bne => branch!(|a, b| a != b),
                Kind::Blt => branch!(|a, b| (a as i32) < (b as i32)),
                Kind::Bge => branch!(|a, b| (a as i32) >= (b as i32)),
                Kind::Bltu => branch!(|a, b| a < b),
                Kind::Bgeu => branch!(|a, b| a >= b),
                Kind::Jal => {
                    // PA-RISC quirk: the privilege level rides in the
                    // low bits of the link value (paper §3.1). The
                    // level is read at run time — the same physical
                    // code can execute at any privilege.
                    let link = vpc!().wrapping_add(4) | u32::from(cpu.psw.cpl);
                    cpu.set_reg(op.rd, link);
                    taken!(op.imm)
                }
                Kind::Jalr => {
                    // Target before link: `rd` may alias the base.
                    let target = cpu.reg(op.rs1).wrapping_add(op.imm as u32) & !3;
                    let link = vpc!().wrapping_add(4) | u32::from(cpu.psw.cpl);
                    cpu.set_reg(op.rd, link);
                    executed += 1;
                    cpu.pc = target;
                    if executed == budget {
                        break 'run None;
                    }
                    // Inline return cache. The trace-terminating
                    // `jalr` is almost always a `ret` with one hot
                    // call site, so its target superblock is
                    // predicted per-op. The prediction is trusted
                    // only while nothing it depends on has moved:
                    // same virtual target, same translation inputs
                    // (PSW key + TLB content generation keep the
                    // recorded physical entry current), and a fresh
                    // superblock still compiled for that exact entry
                    // — the same `valid_at` predicate every other
                    // entry path uses.
                    let slot = sb.ret_slot.get();
                    if slot.vpc == target
                        && slot.psw_key == psw_key(cpu)
                        && slot.tlb_gen == cpu.tlb.content_gen()
                        && self.valid_at(slot.idx, slot.paddr, target, cpu, mem)
                    {
                        stats.ret_cache_hits += 1;
                        sb = self.get(slot.idx);
                        ops = &sb.ops[..];
                        n = ops.len();
                        i = 0;
                        entry_vpc = target;
                        continue 'run;
                    }
                    stats.ret_cache_misses += 1;
                    // Miss: the full chain path (`jalr` masks the low
                    // target bits, so no alignment check is needed),
                    // re-recording the slot on success so monomorphic
                    // call sites stabilize after one miss.
                    let Ok(pa) = cpu.translate(cpu.pc, TlbAccess::Execute) else {
                        break 'run None;
                    };
                    match self.peek(pa, cpu, mem) {
                        Some(next) => {
                            sb.ret_slot.set(RetSlot {
                                vpc: target,
                                paddr: pa,
                                idx: next,
                                tlb_gen: cpu.tlb.content_gen(),
                                psw_key: psw_key(cpu),
                            });
                            sb = self.get(next);
                            ops = &sb.ops[..];
                            n = ops.len();
                            i = 0;
                            entry_vpc = target;
                            continue 'run;
                        }
                        None => break 'run None,
                    }
                }
                Kind::Probe => {
                    // Probe never changes translation state, so it is
                    // safe inside a superblock; its semantics mirror
                    // `Cpu::execute` exactly.
                    let vaddr = cpu.reg(op.rs1);
                    if !cpu.psw.translation {
                        cpu.set_reg(op.rd, 1);
                        next!()
                    }
                    match cpu.tlb.lookup(vaddr, TlbAccess::Read, cpu.psw.is_user()) {
                        TlbResult::Hit(_) => {
                            cpu.set_reg(op.rd, 1);
                            next!()
                        }
                        TlbResult::Denied => {
                            cpu.set_reg(op.rd, 0);
                            next!()
                        }
                        TlbResult::Miss => fault!(Exit::Trap(Trap::TlbMiss {
                            vaddr,
                            write: false,
                        })),
                    }
                }
            }
        };
        cpu.sync_retire(executed);
        (executed, exit)
    }
}

// ---------------------------------------------------------------------
// Cache and promotion
// ---------------------------------------------------------------------

/// Result of a dispatcher probe.
pub(crate) enum Lookup {
    /// A fresh compiled superblock exists at this arena index
    /// (resolve it with [`JitCache::get`]); execute it.
    Compiled(u32),
    /// No compiled code here (cold, not yet hot, or uncompilable):
    /// the caller falls back to the block engine.
    Cold,
}

/// The superblock cache: physical fetch address → compiled superblock,
/// with an execution-count heat table driving promotion and a
/// direct-mapped front table short-circuiting the map on hot hits.
#[derive(Debug, Default)]
pub(crate) struct JitCache {
    arena: Vec<SuperBlock>,
    map: HashMap<u32, u32, IntBuildHasher>,
    /// Cold-address execution counts; an address is compiled when its
    /// count reaches [`PROMOTE_THRESHOLD`].
    heat: HashMap<u32, u32, IntBuildHasher>,
    /// `(paddr, arena index)` keyed by `(paddr >> 2) & (FRONT_SLOTS-1)`.
    front: Option<Box<[(u32, u32); FRONT_SLOTS]>>,
}

impl JitCache {
    fn front_mut(&mut self) -> &mut [(u32, u32); FRONT_SLOTS] {
        self.front
            .get_or_insert_with(|| Box::new([(FRONT_EMPTY, 0); FRONT_SLOTS]))
    }

    /// Drops every compiled superblock and all heat state.
    fn clear(&mut self) {
        self.arena.clear();
        self.map.clear();
        self.heat.clear();
        if let Some(front) = &mut self.front {
            front.fill((FRONT_EMPTY, 0));
        }
    }

    /// Resolves an arena index returned by [`JitCache::probe`] or
    /// [`JitCache::peek`].
    #[inline]
    pub(crate) fn get(&self, idx: u32) -> &SuperBlock {
        &self.arena[idx as usize]
    }

    /// The one entry predicate: true when arena index `idx` holds a
    /// compiled, fresh superblock whose entry is exactly `paddr`,
    /// entered at virtual PC `vpc`. Shared by the front table, the map
    /// path, [`Self::peek`] and the inline return cache, so no entry
    /// path can skip a page-generation or translation check.
    #[inline]
    fn valid_at(&self, idx: u32, paddr: u32, vpc: u32, cpu: &Cpu, mem: &Memory) -> bool {
        match self.arena.get(idx as usize) {
            Some(sb) => sb.entry_paddr == paddr && !sb.ops.is_empty() && sb.fresh(vpc, cpu, mem),
            None => false,
        }
    }

    /// Read-only lookup for superblock chaining: the compiled, fresh
    /// superblock at `paddr`, or `None` (cold, stale or uncompilable —
    /// the caller returns to the full dispatcher, whose [`Self::probe`]
    /// owns promotion and invalidation). The CPU's PC must already be
    /// on the entry's virtual address (`chain!` sets it before
    /// translating); cross-page traces validate their secondary
    /// translations against it. Taking `&self` is the point: the
    /// executing superblock holds a shared borrow of the cache, so
    /// chaining must not mutate it.
    #[inline]
    pub(crate) fn peek(&self, paddr: u32, cpu: &Cpu, mem: &Memory) -> Option<u32> {
        let vpc = cpu.pc;
        let fidx = ((paddr >> 2) as usize) & (FRONT_SLOTS - 1);
        if let Some(front) = &self.front {
            let (tag, idx) = front[fidx];
            if tag == paddr && self.valid_at(idx, paddr, vpc, cpu, mem) {
                return Some(idx);
            }
        }
        let idx = *self.map.get(&paddr)?;
        self.valid_at(idx, paddr, vpc, cpu, mem).then_some(idx)
    }

    /// Looks up the superblock starting at physical address `paddr`
    /// (the translation of the CPU's current PC), compiling it if the
    /// address just crossed the promotion threshold, recompiling if
    /// any constituent page changed.
    #[inline]
    pub(crate) fn probe(
        &mut self,
        paddr: u32,
        cpu: &Cpu,
        mem: &Memory,
        stats: &mut ExecStats,
    ) -> Lookup {
        let fidx = ((paddr >> 2) as usize) & (FRONT_SLOTS - 1);
        if let Some(front) = &self.front {
            let (tag, idx) = front[fidx];
            if tag == paddr && self.valid_at(idx, paddr, cpu.pc, cpu, mem) {
                return Lookup::Compiled(idx);
            }
        }
        self.probe_slow(paddr, fidx, cpu, mem, stats)
    }

    fn probe_slow(
        &mut self,
        paddr: u32,
        fidx: usize,
        cpu: &Cpu,
        mem: &Memory,
        stats: &mut ExecStats,
    ) -> Lookup {
        let gen = mem.page_gen(paddr);
        if let Some(&idx) = self.map.get(&paddr) {
            let sb = &self.arena[idx as usize];
            if sb.pages_stale(mem) {
                // Self-modifying code or DMA over a constituent page:
                // this address is known-hot, recompile in place. An
                // empty-ops marker records an address that no longer
                // compiles (until the page changes again).
                stats.jit_invalidations += 1;
                if mem.page_gen(sb.page_addr) == sb.gen {
                    // The entry page is intact: only a *secondary*
                    // page of a cross-page trace was written.
                    stats.jit_invalidations_secondary += 1;
                }
                let replacement = match compile(paddr, cpu.pc, gen, cpu, mem) {
                    Some(sb) => {
                        stats.superblocks_compiled += 1;
                        if !sb.extra_pages.is_empty() {
                            stats.cross_page_superblocks += 1;
                        }
                        sb
                    }
                    None => SuperBlock::marker(paddr, gen),
                };
                self.arena[idx as usize] = replacement;
                self.front_mut()[fidx] = (FRONT_EMPTY, 0);
            }
            let sb = &self.arena[idx as usize];
            if sb.ops.is_empty() {
                return Lookup::Cold;
            }
            if !sb.fresh(cpu.pc, cpu, mem) {
                // Every page is unwritten, but a secondary virtual
                // page no longer translates to the page the trace was
                // compiled from (a remap, a purge, or a privilege
                // change). The code itself is intact, so keep the
                // trace — the mapping usually comes back — and let
                // the block engine own this entry meanwhile; it takes
                // the exact fault, if any, where the per-step path
                // would.
                return Lookup::Cold;
            }
            self.front_mut()[fidx] = (paddr, idx);
            return Lookup::Compiled(idx);
        }
        // Cold address: count the execution, promote when hot.
        if self.heat.len() >= MAX_HEAT_ENTRIES {
            self.heat.clear();
        }
        let heat = self.heat.entry(paddr).or_insert(0);
        *heat += 1;
        if *heat < PROMOTE_THRESHOLD {
            return Lookup::Cold;
        }
        self.heat.remove(&paddr);
        let sb = match compile(paddr, cpu.pc, gen, cpu, mem) {
            Some(sb) => {
                stats.superblocks_compiled += 1;
                if !sb.extra_pages.is_empty() {
                    stats.cross_page_superblocks += 1;
                }
                sb
            }
            // Uncompilable start (privileged or undecodable first
            // word): cache an empty marker so the block engine owns
            // this address without re-attempting compilation.
            None => SuperBlock::marker(paddr, gen),
        };
        if self.arena.len() >= MAX_SUPERBLOCKS {
            self.clear();
        }
        let idx = self.arena.len() as u32;
        let empty = sb.ops.is_empty();
        self.arena.push(sb);
        self.map.insert(paddr, idx);
        if empty {
            return Lookup::Cold;
        }
        self.front_mut()[fidx] = (paddr, idx);
        Lookup::Compiled(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::TlbReplacement;
    use hvft_isa::asm::assemble;

    fn mem_with(src: &str) -> Memory {
        let prog = assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
        let mut mem = Memory::new(4 * PAGE_SIZE as usize);
        for seg in &prog.segments {
            mem.write_bytes(seg.base, &seg.data);
        }
        mem
    }

    /// A bare CPU (translation off, kernel privilege) positioned at
    /// `pc`; compile/probe use it for translation peeks, which are
    /// identity here.
    fn cpu_at(pc: u32) -> Cpu {
        let mut cpu = Cpu::new(16, TlbReplacement::RoundRobin, 0);
        cpu.pc = pc;
        cpu
    }

    fn compile_at(paddr: u32, mem: &Memory) -> Option<SuperBlock> {
        compile(paddr, paddr, mem.page_gen(paddr), &cpu_at(paddr), mem)
    }

    #[test]
    fn superblock_chains_across_not_taken_branches() {
        let mem = mem_with(
            "s: addi r4, r0, 1
                bne  r4, r0, 8
                addi r5, r0, 2
                addi r6, r0, 3
                jal  ra, s",
        );
        let sb = compile_at(0, &mem).expect("superblock");
        assert_eq!(
            sb.len(),
            5,
            "compilation must continue through the conditional branch \
             and include the final jal"
        );
    }

    #[test]
    fn superblock_stops_at_privileged_instructions() {
        let mem = mem_with("s: addi r4, r0, 1\n addi r5, r0, 2\n rfi\n nop");
        let sb = compile_at(0, &mem).expect("superblock");
        assert_eq!(sb.len(), 2, "rfi must not be compiled");
    }

    #[test]
    fn superblock_stops_at_gate_and_brk() {
        let mem = mem_with("s: addi r4, r0, 1\n gate 3\n nop");
        assert_eq!(compile_at(0, &mem).expect("sb").len(), 1);
        let mem = mem_with("s: nop\n brk 0\n nop");
        assert_eq!(compile_at(0, &mem).expect("sb").len(), 1);
    }

    #[test]
    fn uncompilable_start_yields_none() {
        let mem = mem_with("s: halt");
        assert!(compile_at(0, &mem).is_none());
        let zeros = Memory::new(PAGE_SIZE as usize); // .word 0 is illegal
        assert!(compile_at(0, &zeros).is_none());
    }

    #[test]
    fn backward_branches_are_wired_in_span() {
        let mem = mem_with(
            "s: addi r5, r0, 10
            loop:
                addi r6, r6, 1
                addi r5, r5, -1
                bne  r5, r0, loop
                jal  ra, s",
        );
        let sb = compile_at(0, &mem).expect("superblock");
        assert_eq!(sb.len(), 5);
        // The bne at index 3 targets index 1.
        assert_eq!(sb.ops[3].target, 1);
        // The jal at index 4 targets index 0.
        assert_eq!(sb.ops[4].target, 0);
    }

    #[test]
    fn forward_branches_out_of_span_are_unwired() {
        let mem = mem_with("s: beq r0, r0, 4096\n jal ra, 0");
        let sb = compile_at(0, &mem).expect("superblock");
        assert_eq!(sb.ops[0].target, NO_TARGET);
    }

    #[test]
    fn straight_line_flow_stops_at_the_page_edge() {
        // Only explicit `jal`s extend the page set: a straight-line
        // walk off the entry page still ends the trace.
        let mut mem = Memory::new(2 * PAGE_SIZE as usize);
        let nop = hvft_isa::codec::encode(Instruction::Nop).unwrap();
        for i in 0..(2 * PAGE_SIZE / 4) {
            mem.write_u32(i * 4, nop).unwrap();
        }
        let sb = compile_at(16, &mem).expect("superblock");
        assert_eq!(sb.len() as u32, (PAGE_SIZE - 16) / 4);
        assert!(sb.extra_pages.is_empty());
    }

    #[test]
    fn cross_page_jal_fuses_and_records_the_page_dependency() {
        let mem = mem_with(
            "s: addi r4, r0, 1
                jal  ra, callee
            .org 4096
            callee:
                addi r5, r0, 2
                jalr r0, ra, 0",
        );
        let sb = compile_at(0, &mem).expect("superblock");
        assert_eq!(sb.len(), 4, "call + callee must fuse across the page");
        assert_eq!(sb.extra_pages.len(), 1);
        assert_eq!(sb.extra_pages[0].ppage, PAGE_SIZE);
        assert_eq!(sb.extra_pages[0].voff, PAGE_SIZE);
        assert_eq!(sb.extra_pages[0].gen, mem.page_gen(PAGE_SIZE));
    }

    #[test]
    fn trace_page_set_is_capped() {
        // A call chain touching more pages than MAX_TRACE_PAGES stops
        // extending at the cap.
        let mut src = String::from("s: jal ra, f1\n");
        for p in 1..6 {
            src.push_str(&format!(
                ".org {}\nf{p}: addi r4, r4, {p}\n jal ra, f{}\n",
                p * 4096,
                p + 1
            ));
        }
        src.push_str(".org 24576\nf6: jalr r0, ra, 0\n");
        let mem = {
            let prog = assemble(&src).unwrap_or_else(|e| panic!("asm: {e}"));
            let mut mem = Memory::new(8 * PAGE_SIZE as usize);
            for seg in &prog.segments {
                mem.write_bytes(seg.base, &seg.data);
            }
            mem
        };
        let sb = compile_at(0, &mem).expect("superblock");
        assert_eq!(sb.extra_pages.len(), MAX_TRACE_PAGES - 1);
        // Pages 0..MAX_TRACE_PAGES contribute ops: the jal on the
        // last allowed page ends the trace.
        assert_eq!(sb.len(), 1 + (MAX_TRACE_PAGES - 1) * 2);
    }

    #[test]
    fn secondary_page_write_invalidates_a_cross_page_trace() {
        let mut mem = mem_with(
            "s: addi r4, r0, 1
                jal  ra, callee
            .org 4096
            callee:
                addi r5, r0, 2
                jalr r0, ra, 0",
        );
        let mut cache = JitCache::default();
        let mut stats = ExecStats::default();
        let cpu = cpu_at(0);
        for _ in 0..PROMOTE_THRESHOLD {
            let _ = cache.probe(0, &cpu, &mem, &mut stats);
        }
        assert_eq!(stats.superblocks_compiled, 1);
        assert_eq!(stats.cross_page_superblocks, 1);
        // Write into the *second* page: the entry page's generation is
        // untouched, yet the trace must die.
        let halt = hvft_isa::codec::encode(Instruction::Halt).unwrap();
        mem.write_u32(4096, halt).unwrap();
        match cache.probe(0, &cpu, &mem, &mut stats) {
            Lookup::Compiled(idx) => {
                // Recompiled: the callee's first word is now halt, so
                // the trace ends at the jal and is single-page again.
                assert_eq!(cache.get(idx).len(), 2);
                assert!(cache.get(idx).extra_pages.is_empty());
            }
            Lookup::Cold => panic!("hot address must recompile"),
        }
        assert_eq!(stats.jit_invalidations, 1);
        assert_eq!(stats.jit_invalidations_secondary, 1);
    }

    #[test]
    fn cache_promotes_only_hot_addresses() {
        let mem = mem_with("s: addi r4, r0, 1\n jal ra, s");
        let mut cache = JitCache::default();
        let mut stats = ExecStats::default();
        for _ in 0..PROMOTE_THRESHOLD - 1 {
            assert!(matches!(
                cache.probe(0, &cpu_at(0), &mem, &mut stats),
                Lookup::Cold
            ));
        }
        assert!(matches!(
            cache.probe(0, &cpu_at(0), &mem, &mut stats),
            Lookup::Compiled(_)
        ));
        assert_eq!(stats.superblocks_compiled, 1);
        // Subsequent probes hit without recompiling.
        assert!(matches!(
            cache.probe(0, &cpu_at(0), &mem, &mut stats),
            Lookup::Compiled(_)
        ));
        assert_eq!(stats.superblocks_compiled, 1);
    }

    #[test]
    fn cache_invalidates_on_page_writes() {
        let mut mem = mem_with("s: addi r4, r0, 1\n addi r5, r0, 2\n jal ra, s");
        let mut cache = JitCache::default();
        let mut stats = ExecStats::default();
        for _ in 0..PROMOTE_THRESHOLD {
            let _ = cache.probe(0, &cpu_at(0), &mem, &mut stats);
        }
        assert_eq!(stats.superblocks_compiled, 1);
        // Patch the second instruction into a halt: recompile shrinks
        // the superblock.
        let halt = hvft_isa::codec::encode(Instruction::Halt).unwrap();
        mem.write_u32(4, halt).unwrap();
        match cache.probe(0, &cpu_at(0), &mem, &mut stats) {
            Lookup::Compiled(idx) => assert_eq!(cache.get(idx).len(), 1),
            Lookup::Cold => panic!("hot address must recompile"),
        }
        assert_eq!(stats.jit_invalidations, 1);
        assert_eq!(stats.superblocks_compiled, 2);
    }

    #[test]
    fn uncompilable_hot_address_caches_a_marker() {
        let mem = mem_with("s: halt");
        let mut cache = JitCache::default();
        let mut stats = ExecStats::default();
        for _ in 0..PROMOTE_THRESHOLD + 8 {
            assert!(matches!(
                cache.probe(0, &cpu_at(0), &mem, &mut stats),
                Lookup::Cold
            ));
        }
        assert_eq!(stats.superblocks_compiled, 0);
        assert_eq!(cache.map.len(), 1, "marker cached after promotion");
    }

    #[test]
    fn cache_stays_bounded() {
        let pages = (MAX_SUPERBLOCKS as u32 * 4).div_ceil(PAGE_SIZE) + 1;
        let mut mem = Memory::new((pages * PAGE_SIZE) as usize);
        // Fill with `jalr` so every superblock is a single op: the test
        // exercises cache bounding, not trace formation.
        let jalr = hvft_isa::codec::encode(Instruction::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            disp: 0,
        })
        .unwrap();
        for i in 0..(pages * PAGE_SIZE / 4) {
            mem.write_u32(i * 4, jalr).unwrap();
        }
        let mut cache = JitCache::default();
        let mut stats = ExecStats::default();
        let mut cpu = cpu_at(0);
        for i in 0..(MAX_SUPERBLOCKS as u32 + 64) {
            for _ in 0..PROMOTE_THRESHOLD {
                cpu.pc = i * 4;
                let _ = cache.probe(i * 4, &cpu, &mem, &mut stats);
            }
        }
        assert!(cache.map.len() <= MAX_SUPERBLOCKS);
    }
}
