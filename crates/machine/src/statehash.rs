//! Virtual-machine state hashing for lockstep divergence detection.
//!
//! The paper defines the *virtual-machine state* as "the memory and
//! registers that change only with execution of instructions by that
//! virtual machine" — general registers, PC, PSW, address-translation
//! state and main memory — and explicitly excludes the time-of-day clock,
//! interval timer and I/O state (§2.1). The replica-coordination
//! protocols guarantee this state is identical at the primary and backup
//! at every epoch boundary; hashing it is how the test suite (and the
//! `lockstep` checker in `hvft-core`) verifies that guarantee.

use crate::cpu::Cpu;
use crate::mem::Memory;
use hvft_isa::reg::ControlReg;

/// Incremental FNV-1a (64-bit) hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Mixes in bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Mixes in a word.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Final digest.
    pub const fn digest(self) -> u64 {
        self.0
    }
}

/// Control registers included in the VM state.
///
/// `rctr` is excluded (owned by the hypervisor for epoch control) and
/// `eirr` is *included*: under the protocols, interrupt assertions happen
/// at identical instruction-stream points on both replicas, so their
/// pending sets must match at epoch boundaries.
const HASHED_CTL: [ControlReg; 9] = [
    ControlReg::Iva,
    ControlReg::Ipsw,
    ControlReg::Iip,
    ControlReg::Eiem,
    ControlReg::Eirr,
    ControlReg::Ptbr,
    ControlReg::TrapArg,
    ControlReg::Scratch0,
    ControlReg::Scratch1,
];

/// Hashes the complete virtual-machine state (registers + PSW + hashed
/// control registers + all of RAM).
///
/// # Examples
///
/// ```
/// use hvft_machine::cpu::Cpu;
/// use hvft_machine::mem::Memory;
/// use hvft_machine::statehash::vm_state_hash;
/// use hvft_machine::tlb::TlbReplacement;
///
/// let cpu = Cpu::new(8, TlbReplacement::RoundRobin, 0);
/// let mem = Memory::new(4096);
/// let h1 = vm_state_hash(&cpu, &mem);
/// let h2 = vm_state_hash(&cpu, &mem);
/// assert_eq!(h1, h2);
/// ```
pub fn vm_state_hash(cpu: &Cpu, mem: &Memory) -> u64 {
    let mut h = Fnv64::new();
    for &r in cpu.regs() {
        h.update_u32(r);
    }
    h.update_u32(cpu.pc);
    h.update_u32(cpu.psw.pack());
    for cr in HASHED_CTL {
        h.update_u32(cpu.ctl(cr));
    }
    h.update(mem.raw());
    h.digest()
}

/// Hashes only registers and control state (cheap variant for frequent
/// epoch-boundary checks on large memories).
pub fn register_state_hash(cpu: &Cpu) -> u64 {
    let mut h = Fnv64::new();
    for &r in cpu.regs() {
        h.update_u32(r);
    }
    h.update_u32(cpu.pc);
    h.update_u32(cpu.psw.pack());
    for cr in HASHED_CTL {
        h.update_u32(cpu.ctl(cr));
    }
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::TlbReplacement;
    use hvft_isa::reg::Reg;

    fn fresh() -> (Cpu, Memory) {
        (
            Cpu::new(8, TlbReplacement::RoundRobin, 0),
            Memory::new(4096),
        )
    }

    #[test]
    fn identical_states_hash_equal() {
        let (a_cpu, a_mem) = fresh();
        let (b_cpu, b_mem) = fresh();
        assert_eq!(vm_state_hash(&a_cpu, &a_mem), vm_state_hash(&b_cpu, &b_mem));
    }

    #[test]
    fn register_difference_changes_hash() {
        let (mut a, mem) = fresh();
        let base = vm_state_hash(&a, &mem);
        a.set_reg(Reg::of(5), 1);
        assert_ne!(vm_state_hash(&a, &mem), base);
    }

    #[test]
    fn memory_difference_changes_hash() {
        let (cpu, mut mem) = fresh();
        let base = vm_state_hash(&cpu, &mem);
        mem.write_u8(100, 1).unwrap();
        assert_ne!(vm_state_hash(&cpu, &mem), base);
    }

    #[test]
    fn pc_difference_changes_hash() {
        let (mut cpu, mem) = fresh();
        let base = vm_state_hash(&cpu, &mem);
        cpu.pc = 4;
        assert_ne!(vm_state_hash(&cpu, &mem), base);
    }

    #[test]
    fn rctr_is_excluded() {
        // The recovery counter belongs to the hypervisor, not the VM state.
        let (mut cpu, mem) = fresh();
        let base = vm_state_hash(&cpu, &mem);
        cpu.set_ctl(hvft_isa::reg::ControlReg::Rctr, 12345);
        assert_eq!(vm_state_hash(&cpu, &mem), base);
    }

    #[test]
    fn tlb_is_excluded() {
        // With hypervisor-managed TLBs (the paper's fix), TLB contents may
        // legitimately differ between replicas.
        let (mut cpu, mem) = fresh();
        let base = vm_state_hash(&cpu, &mem);
        cpu.tlb.insert_pte(0x5000, 0x3017);
        assert_eq!(vm_state_hash(&cpu, &mem), base);
    }

    #[test]
    fn register_hash_ignores_memory() {
        let (cpu, _) = fresh();
        let h = register_state_hash(&cpu);
        let (cpu2, _) = fresh();
        assert_eq!(h, register_state_hash(&cpu2));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.update(b"a");
        assert_eq!(h.digest(), 0xaf63_dc4c_8601_ec8c);
    }
}
