//! Predecoded basic blocks and their cache — the interpreter's fast
//! path.
//!
//! A [`DecodedBlock`] is a straight-line run of predecoded instructions
//! starting at a physical fetch address and ending at the first *block
//! terminator* ([`Instruction::is_block_terminator`]: any control
//! transfer or privileged instruction) or at the page boundary,
//! whichever comes first. [`Cpu::run`](crate::cpu::Cpu::run) executes a
//! cached block with **one** address translation and **one** cache
//! lookup, instead of a translate + RAM read + decode for every
//! instruction the way [`Cpu::step`](crate::cpu::Cpu::step) does.
//!
//! # Why block caching preserves the Instruction-Stream Interrupt
//! Assumption
//!
//! The paper's protocols depend on interrupts being deliverable at an
//! *exact* point in the guest instruction stream (§2.1: epochs end
//! after precisely `epoch_len` retired instructions, and interrupts are
//! delivered only at those boundaries). Batching execution must not
//! smear those points, so the block engine is built to be equivalent to
//! single-stepping **instruction for instruction**, not merely "close":
//!
//! - entry into a block is clamped to
//!   `min(block_len, rctr, caller budget)` — the recovery counter can
//!   expire only *between* instructions, at the same retirement count
//!   the per-step path traps at, never mid-block;
//! - pending-interrupt and recovery-counter checks run before every
//!   block entry; nothing *inside* a block can change them, because
//!   every instruction that could (`ssm`/`rsm`, `mtctl`, `rfi`, …) is
//!   privileged and privileged instructions terminate blocks;
//! - address-translation state is likewise constant inside a block
//!   (`tlbi`/`tlbp`/`rfi`/PSW writes all terminate blocks), so the one
//!   translation at entry covers every fetch the block replaces — and
//!   because blocks never cross a page boundary, the single page
//!   translation is exact;
//! - blocks are keyed by **physical** address, so TLB refills,
//!   replacement-policy non-determinism, and remappings can never make
//!   a cached block stale: the same physical words are the same block.
//!
//! # Self-modifying code
//!
//! Staleness therefore has exactly one source: the backing RAM changing
//! (guest stores or device DMA). [`crate::mem::Memory`] bumps a
//! per-page write generation on every write; a block records its page's
//! generation at decode time and is rebuilt when they differ. Two
//! checks make this exact:
//!
//! - on block entry, the cache compares generations and rebuilds on
//!   mismatch (cross-block patching, DMA into code pages);
//! - during block execution, after every retired store, the CPU
//!   re-compares the block's own page generation and abandons the
//!   predecoded tail on mismatch (a block that patches *itself* ahead
//!   of its own program counter re-fetches the patched words exactly
//!   like the per-step path would).

use crate::hash::IntBuildHasher;
use crate::mem::{MemFault, Memory, PAGE_SIZE};
use hvft_isa::codec::decode;
use hvft_isa::instruction::Instruction;
use std::collections::HashMap;

/// Cap on cached blocks; crossing it clears the cache wholesale (the
/// working set of real guests is far below this — the cap only guards
/// pathological block fragmentation from eating memory).
const MAX_BLOCKS: usize = 8192;

/// A predecoded straight-line run of instructions.
///
/// Raw words are kept in a parallel array (rather than interleaved)
/// because the hot loop only walks `insns`; a word is consulted only on
/// the rare `PrivilegedOp { word }` trap, which must carry the original
/// encoding.
#[derive(Debug)]
pub struct DecodedBlock {
    /// The instructions, in fetch order.
    pub insns: Box<[Instruction]>,
    /// The raw instruction words, parallel to `insns`.
    pub words: Box<[u32]>,
    /// Write generation of the backing page when the block was decoded.
    pub gen: u64,
}

/// Counters describing cache behaviour (for tests and benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Entries served from the cache with a current generation.
    pub hits: u64,
    /// Entries that decoded a new block.
    pub misses: u64,
    /// Entries that found a block with a stale generation (self-
    /// modifying code or DMA) and rebuilt it.
    pub invalidations: u64,
}

/// Slots in the direct-mapped front table (power of two).
const FRONT_SLOTS: usize = 128;
/// Front tag marking an empty slot. Blocks are only cached for RAM
/// addresses, which are always below the I/O window, so no valid block
/// address collides with it.
const FRONT_EMPTY: u32 = u32::MAX;

/// The block cache: physical fetch address → predecoded block.
///
/// Blocks live in an arena ([`Vec`]) with stable indices; a `HashMap`
/// resolves fetch addresses to indices, and a small direct-mapped front
/// table short-circuits the map for the handful of blocks a guest loop
/// revisits (the common case is one front probe per block entry).
#[derive(Debug)]
pub struct BlockCache {
    arena: Vec<DecodedBlock>,
    map: HashMap<u32, u32, IntBuildHasher>,
    /// `(paddr, arena index)` keyed by `(paddr >> 2) & (FRONT_SLOTS-1)`.
    front: Box<[(u32, u32); FRONT_SLOTS]>,
    stats: BlockCacheStats,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache {
            arena: Vec::new(),
            map: HashMap::default(),
            front: Box::new([(FRONT_EMPTY, 0); FRONT_SLOTS]),
            stats: BlockCacheStats::default(),
        }
    }
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache behaviour counters since construction.
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every cached block.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.map.clear();
        self.front.fill((FRONT_EMPTY, 0));
    }

    /// Returns the block starting at physical address `paddr`, decoding
    /// (or re-decoding, if the page changed) as needed. `None` when no
    /// block can start here — the first word is unreadable or
    /// undecodable — in which case the caller must fall back to the
    /// per-step path, which raises the exact trap.
    #[inline]
    pub fn get_or_build(&mut self, paddr: u32, mem: &Memory) -> Option<&DecodedBlock> {
        let gen = mem.page_gen(paddr);
        let fidx = ((paddr >> 2) as usize) & (FRONT_SLOTS - 1);
        let (tag, idx) = self.front[fidx];
        if tag == paddr && self.arena[idx as usize].gen == gen {
            self.stats.hits += 1;
            return Some(&self.arena[idx as usize]);
        }
        self.get_or_build_slow(paddr, gen, fidx, mem)
    }

    fn get_or_build_slow(
        &mut self,
        paddr: u32,
        gen: u64,
        fidx: usize,
        mem: &Memory,
    ) -> Option<&DecodedBlock> {
        if self.arena.len() >= MAX_BLOCKS {
            self.clear();
        }
        let idx = match self.map.get(&paddr) {
            Some(&idx) => {
                let b = &self.arena[idx as usize];
                if b.gen == gen {
                    self.stats.hits += 1;
                } else {
                    self.stats.invalidations += 1;
                    match build_block(paddr, gen, mem) {
                        Some(nb) => self.arena[idx as usize] = nb,
                        None => {
                            // The page changed and no block starts here
                            // any more: unlink the stale entry (the
                            // arena slot becomes an unreachable
                            // tombstone until the next clear).
                            self.map.remove(&paddr);
                            self.front[fidx] = (FRONT_EMPTY, 0);
                            return None;
                        }
                    }
                }
                idx
            }
            None => {
                self.stats.misses += 1;
                let block = build_block(paddr, gen, mem)?;
                let idx = self.arena.len() as u32;
                self.arena.push(block);
                self.map.insert(paddr, idx);
                idx
            }
        };
        self.front[fidx] = (paddr, idx);
        Some(&self.arena[idx as usize])
    }
}

/// Decodes the block starting at `paddr`: consecutive words up to and
/// including the first terminator, stopping early at the page boundary
/// or at the first unreadable/undecodable word.
fn build_block(paddr: u32, gen: u64, mem: &Memory) -> Option<DecodedBlock> {
    // u64 arithmetic: the page-end bound must not overflow for fetches
    // in the last page of the 32-bit physical space.
    let page_end = (u64::from(paddr) | u64::from(PAGE_SIZE - 1)) + 1;
    let mut insns = Vec::new();
    let mut words = Vec::new();
    let mut pa = u64::from(paddr);
    while pa < page_end {
        let word = match mem.read_u32(pa as u32) {
            Ok(w) => w,
            Err(MemFault::Io { .. } | MemFault::Unmapped { .. }) => break,
        };
        let insn = match decode(word) {
            Ok(i) => i,
            Err(_) => break,
        };
        insns.push(insn);
        words.push(word);
        if insn.is_block_terminator() {
            break;
        }
        pa += 4;
    }
    if insns.is_empty() {
        return None;
    }
    Some(DecodedBlock {
        insns: insns.into_boxed_slice(),
        words: words.into_boxed_slice(),
        gen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_isa::asm::assemble;

    fn mem_with(src: &str) -> Memory {
        let prog = assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
        let mut mem = Memory::new(4 * PAGE_SIZE as usize);
        for seg in &prog.segments {
            mem.write_bytes(seg.base, &seg.data);
        }
        mem
    }

    #[test]
    fn block_ends_at_terminator_inclusive() {
        let mem = mem_with("s: addi r4, r0, 1\n addi r5, r0, 2\n jal ra, s\n nop");
        let mut cache = BlockCache::new();
        let b = cache.get_or_build(0, &mem).expect("block");
        assert_eq!(b.insns.len(), 3, "two addi + the jal terminator");
        assert_eq!(b.words.len(), 3);
        assert!(b.insns[2].is_block_terminator());
    }

    #[test]
    fn block_never_crosses_a_page_boundary() {
        // A page full of nops with no terminator.
        let mut mem = Memory::new(2 * PAGE_SIZE as usize);
        let nop = hvft_isa::codec::encode(Instruction::Nop).unwrap();
        for i in 0..(2 * PAGE_SIZE / 4) {
            mem.write_u32(i * 4, nop).unwrap();
        }
        let mut cache = BlockCache::new();
        let b = cache.get_or_build(16, &mem).expect("block");
        assert_eq!(
            b.insns.len() as u32,
            (PAGE_SIZE - 16) / 4,
            "block stops at the page edge"
        );
    }

    #[test]
    fn undecodable_first_word_yields_no_block() {
        let mem = Memory::new(PAGE_SIZE as usize); // all zeros: .word 0 is illegal
        let mut cache = BlockCache::new();
        assert!(cache.get_or_build(0, &mem).is_none());
    }

    #[test]
    fn undecodable_tail_truncates_the_block() {
        let mem = mem_with("s: addi r4, r0, 1\n .word 0\n");
        let mut cache = BlockCache::new();
        let b = cache.get_or_build(0, &mem).expect("block");
        assert_eq!(b.insns.len(), 1);
    }

    #[test]
    fn stale_generation_rebuilds() {
        let mut mem = mem_with("s: addi r4, r0, 1\n addi r5, r0, 2\n halt");
        let mut cache = BlockCache::new();
        let len1 = cache.get_or_build(0, &mem).expect("block").insns.len();
        assert_eq!(len1, 3);
        assert_eq!(cache.stats().misses, 1);
        // Same generation: hit.
        let _ = cache.get_or_build(0, &mem).expect("block");
        assert_eq!(cache.stats().hits, 1);
        // Patch the second instruction; the cached block must die.
        let halt = hvft_isa::codec::encode(Instruction::Halt).unwrap();
        mem.write_u32(4, halt).unwrap();
        let b3 = cache.get_or_build(0, &mem).expect("block");
        assert_eq!(b3.insns.len(), 2, "rebuilt block sees the patched halt");
        assert!(matches!(b3.insns[1], Instruction::Halt));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn capacity_overflow_clears_rather_than_grows() {
        // 16 pages of `jal` singletons: every word starts its own
        // one-instruction block, giving more distinct keys than
        // MAX_BLOCKS.
        let pages = (MAX_BLOCKS as u32 * 4).div_ceil(PAGE_SIZE) + 1;
        let mut mem = Memory::new((pages * PAGE_SIZE) as usize);
        let jal = hvft_isa::codec::encode(Instruction::Jal {
            rd: hvft_isa::reg::Reg::ZERO,
            offset: 4,
        })
        .unwrap();
        for i in 0..(pages * PAGE_SIZE / 4) {
            mem.write_u32(i * 4, jal).unwrap();
        }
        let mut cache = BlockCache::new();
        for i in 0..(MAX_BLOCKS as u32 + 64) {
            let _ = cache.get_or_build(i * 4, &mem);
        }
        assert!(
            cache.len() <= MAX_BLOCKS,
            "cache must stay bounded, has {}",
            cache.len()
        );
    }
}
