//! Execution tiers and the dispatcher state behind [`Cpu::run`].
//!
//! The CPU offers three observably identical ways to execute a budget
//! of instructions:
//!
//! - [`ExecTier::Step`] — the reference interpreter: one fetch,
//!   translate and decode per instruction ([`Cpu::step`] in a loop);
//! - [`ExecTier::Block`] — predecoded basic blocks ([`crate::block`]):
//!   one translation and one cache lookup per straight-line run;
//! - [`ExecTier::Jit`] — threaded-code superblocks ([`crate::jit`]):
//!   hot code is compiled into chains of pre-specialized handler
//!   functions with operands resolved at compile time, entered when a
//!   compiled superblock exists and falling back to the block engine
//!   on cold paths.
//!
//! "Observably identical" is load-bearing: the paper's protocols
//! (Bressoud & Schneider §2.1) require epoch boundaries and interrupt
//! delivery to land at *exact* retirement counts, so every tier clamps
//! execution to `min(budget, rctr)` and reports the same exits at the
//! same retirement counts with the same machine state. The three-way
//! differential oracle in `tests/proptest_step_vs_block.rs` enforces
//! this.
//!
//! [`Cpu::run`]: crate::cpu::Cpu::run
//! [`Cpu::step`]: crate::cpu::Cpu::step

use crate::block::BlockCache;
use crate::jit::JitCache;
use core::fmt;
use std::str::FromStr;

/// Which engine [`Cpu::run`](crate::cpu::Cpu::run) uses to consume its
/// instruction budget.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ExecTier {
    /// Single-step reference interpreter (tier 0).
    Step,
    /// Predecoded basic blocks (tier 1, the default).
    #[default]
    Block,
    /// Threaded-code superblock JIT over the block engine (tier 2).
    Jit,
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecTier::Step => "step",
            ExecTier::Block => "block",
            ExecTier::Jit => "jit",
        })
    }
}

impl FromStr for ExecTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "step" => Ok(ExecTier::Step),
            "block" => Ok(ExecTier::Block),
            "jit" => Ok(ExecTier::Jit),
            other => Err(format!(
                "unknown exec tier {other:?} (expected step, block or jit)"
            )),
        }
    }
}

/// Per-tier execution counters (for tests, benches and reports).
///
/// The retirement counters attribute instructions to the engine that
/// retired them *inside* [`Cpu::run`](crate::cpu::Cpu::run); the few
/// instructions completed by the embedder between runs (environment
/// reads, MMIO completions) are counted in
/// [`Cpu::retired`](crate::cpu::Cpu::retired) but not attributed to a
/// tier, so the tier counters sum to slightly less than the total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired by the single-step loop.
    pub step_retired: u64,
    /// Instructions retired by the block engine (including the cold
    /// fallback path of the jit tier).
    pub block_retired: u64,
    /// Instructions retired inside compiled superblocks.
    pub jit_retired: u64,
    /// Superblocks compiled (promotions and stale recompiles).
    pub superblocks_compiled: u64,
    /// Compiled superblocks found stale (self-modifying code or DMA)
    /// and recompiled or discarded.
    pub jit_invalidations: u64,
    /// Subset of `jit_invalidations` where the entry page was intact
    /// and only a *secondary* page of a cross-page trace had been
    /// written.
    pub jit_invalidations_secondary: u64,
    /// `jalr` executions inside superblocks whose inline return-cache
    /// prediction verified and chained in-frame.
    pub ret_cache_hits: u64,
    /// `jalr` executions inside superblocks whose prediction missed
    /// (cold slot, polymorphic target, or invalidated prediction) and
    /// took the full chain path.
    pub ret_cache_misses: u64,
    /// Compiled superblocks whose trace crossed at least one page
    /// boundary (subset of `superblocks_compiled`).
    pub cross_page_superblocks: u64,
}

/// Dispatcher state owned by the CPU: the selected tier plus the caches
/// of both batching engines. Kept in one struct so
/// [`Cpu::run`](crate::cpu::Cpu::run) can move it out of the CPU
/// wholesale while executing (blocks are borrowed from the caches while
/// `execute` borrows the CPU).
#[derive(Debug, Default)]
pub struct ExecDispatcher {
    pub(crate) tier: ExecTier,
    pub(crate) blocks: BlockCache,
    pub(crate) jit: JitCache,
    pub(crate) stats: ExecStats,
}
